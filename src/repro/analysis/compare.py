"""Figure 1 and Figure 2 table builders (experiments E1 and E2).

Every cell records its *provenance*:

* ``exact``   — computed from an explicit instance built by this library;
* ``formula`` — the paper's closed form (cross-checked against ``exact``
  cells wherever an explicit instance is feasible);
* ``cited``   — a claim of the paper (or of [1] for hyper-deBruijn rows)
  that this library does not independently verify.

``figure1_table(m, n)`` reproduces the parametric comparison; with
``verify=True`` it builds all four graphs and replaces formula cells by
exact measurements (sizes permitting).  ``figure2_table()`` reproduces the
concrete comparison of ``HB(3,8)`` vs ``HD(3,11)`` vs ``HD(6,8)`` — three
networks of 16384-ish nodes — computing every numeric entry exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.formulas import (
    FamilyFormulas,
    butterfly_formulas,
    hypercube_formulas,
    hyperbutterfly_formulas,
    hyperdebruijn_formulas,
)
from repro.analysis.metrics import degree_profile, exact_diameter
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn

__all__ = ["Cell", "figure1_table", "figure2_table", "render_table"]


@dataclass(frozen=True)
class Cell:
    """One table entry plus where its value came from."""

    value: object
    source: str  # "exact" | "formula" | "cited"

    def __str__(self) -> str:
        marker = {"exact": "", "formula": "*", "cited": "†"}[self.source]
        return f"{self.value}{marker}"


_ROWS = [
    "Nodes",
    "Edges",
    "Regular",
    "Degree",
    "Diameter",
    "Fault-tolerance",
    "Cycles",
    "Mesh",
    "Binary Tree",
    "Mesh of Trees",
]


def _formula_column(f: FamilyFormulas) -> dict[str, Cell]:
    degree = str(f.degree_min) if f.degree_min == f.degree_max else (
        f"{f.degree_min}..{f.degree_max}"
    )
    return {
        "Nodes": Cell(f.nodes, "formula"),
        "Edges": Cell(f.edges if f.edges is not None else "(computed)", "formula"),
        "Regular": Cell("yes" if f.regular else "no", "formula"),
        "Degree": Cell(degree, "formula"),
        "Diameter": Cell(f.diameter, "formula"),
        "Fault-tolerance": Cell(f.fault_tolerance, "formula"),
        "Cycles": Cell(f.cycles, "cited"),
        "Mesh": Cell("yes" if f.mesh else "no", "cited"),
        "Binary Tree": Cell(f.binary_tree, "cited"),
        "Mesh of Trees": Cell(f.mesh_of_trees, "cited"),
    }


def _build_topology(family: str, m: int, n: int) -> Topology:
    if family.startswith("H_"):
        return Hypercube(m + n)
    if family.startswith("B_"):
        return CayleyButterfly(m + n)
    if family.startswith("HD"):
        return HyperDeBruijn(m, n)
    return HyperButterfly(m, n)


def _exactify_column(
    column: dict[str, Cell], topology: Topology, *, connectivity: Callable | None
) -> None:
    """Replace size/degree/diameter/FT formula cells with measured values."""
    profile = degree_profile(topology)
    degrees = sorted(profile)
    degree = str(degrees[0]) if len(degrees) == 1 else f"{degrees[0]}..{degrees[-1]}"
    column["Nodes"] = Cell(topology.num_nodes, "exact")
    column["Edges"] = Cell(
        sum(d * c for d, c in profile.items()) // 2, "exact"
    )
    column["Regular"] = Cell("yes" if len(degrees) == 1 else "no", "exact")
    column["Degree"] = Cell(degree, "exact")
    column["Diameter"] = Cell(exact_diameter(topology), "exact")
    if connectivity is not None:
        column["Fault-tolerance"] = Cell(connectivity(topology), "exact")


def figure1_table(
    m: int, n: int, *, verify: bool = False, verify_node_budget: int = 40_000
) -> dict[str, dict[str, Cell]]:
    """The Figure 1 comparison at design point ``(m, n)``.

    Returns ``{family: {row: Cell}}``.  With ``verify=True``, families whose
    instances fit in ``verify_node_budget`` nodes get exact measurements
    (including flow-computed vertex connectivity on instances small enough).
    """
    if n < 3:
        raise InvalidParameterError("Figure 1 requires n >= 3")
    columns = {
        f.family: _formula_column(f)
        for f in (
            hypercube_formulas(m, n),
            butterfly_formulas(m, n),
            hyperdebruijn_formulas(m, n),
            hyperbutterfly_formulas(m, n),
        )
    }
    if verify:
        from repro.faults.connectivity import vertex_connectivity

        for family, column in columns.items():
            topology = _build_topology(family, m, n)
            if topology.num_nodes > verify_node_budget:
                continue
            connectivity = (
                vertex_connectivity if topology.num_nodes <= 2048 else None
            )
            _exactify_column(column, topology, connectivity=connectivity)
    return columns


def figure2_table(
    *,
    exact_diameters: bool = True,
    connectivity_pairs: int = 8,
) -> dict[str, dict[str, Cell]]:
    """The Figure 2 concrete comparison: ``HB(3,8)`` vs ``HD(3,11)`` vs
    ``HD(6,8)`` (all ≈16384 processors).

    Numeric structure cells are exact.  Diameters are exact (single BFS for
    the vertex-transitive ``HB``; iFUB for ``HD``) unless
    ``exact_diameters=False`` (formula values, for quick runs).
    Fault tolerance is reported as the paper's formula value together with
    a sampled Menger certificate (``connectivity_pairs`` disjoint-path
    witnesses; see ``repro.faults.connectivity``); exact flow connectivity
    at 16k nodes is impractical, and tests verify it exactly on scaled-down
    instances instead.
    """
    from repro.faults.connectivity import connectivity_certificate

    instances: dict[str, object] = {
        "HB(3,8)": HyperButterfly(3, 8),
        "HD(3,11)": HyperDeBruijn(3, 11),
        "HD(6,8)": HyperDeBruijn(6, 8),
    }
    embeddings = {
        "HB(3,8)": {
            "Cycles": Cell("even cycles 4..16384", "exact"),
            "Mesh": Cell("yes", "exact"),
            "Binary Tree": Cell("T(10)", "exact"),
            "Mesh of Trees": Cell("MT(2^1,2^8)", "exact"),
        },
        "HD(3,11)": {
            "Cycles": Cell("pancyclic", "cited"),
            "Mesh": Cell("yes", "cited"),
            "Binary Tree": Cell("T(13)", "cited"),
            "Mesh of Trees": Cell("MT(2^1,2^10)", "cited"),
        },
        "HD(6,8)": {
            "Cycles": Cell("pancyclic", "cited"),
            "Mesh": Cell("yes", "cited"),
            "Binary Tree": Cell("T(13)", "cited"),
            "Mesh of Trees": Cell("MT(2^4,2^6)", "cited"),
        },
    }
    table: dict[str, dict[str, Cell]] = {}
    for name, topology in instances.items():
        profile = degree_profile(topology)
        degrees = sorted(profile)
        degree = (
            str(degrees[0]) if len(degrees) == 1 else f"{degrees[0]}..{degrees[-1]}"
        )
        if exact_diameters:
            diameter = Cell(exact_diameter(topology), "exact")
        else:
            diameter = Cell(topology.diameter_formula(), "formula")
        certificate = connectivity_certificate(topology, pairs=connectivity_pairs)
        ft_formula = topology.fault_tolerance_formula()
        ft_note = (
            f"{ft_formula} (witnessed >= {certificate.lower_witnessed})"
        )
        table[name] = {
            "Nodes": Cell(topology.num_nodes, "exact"),
            "Edges": Cell(topology.num_edges, "exact"),
            "Regular": Cell("yes" if len(degrees) == 1 else "no", "exact"),
            "Degree": Cell(degree, "exact"),
            "Diameter": diameter,
            "Fault-tolerance": Cell(ft_note, "formula"),
            **embeddings[name],
        }
    return table


def render_table(table: dict[str, dict[str, Cell]], *, title: str = "") -> str:
    """Render ``{column: {row: Cell}}`` in the paper's layout (rows =
    parameters, columns = families).  ``*`` marks formula cells, ``†``
    marks cited-only cells."""
    columns = list(table)
    rows = [r for r in _ROWS if any(r in col for col in table.values())]
    widths = [max(len("Parameter"), max(len(r) for r in rows))]
    for name in columns:
        width = max(len(name), max(len(str(table[name].get(r, ""))) for r in rows))
        widths.append(width)
    lines = []
    if title:
        lines.append(title)
    header = ["Parameter"] + columns
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        cells = [row.ljust(widths[0])]
        for name, width in zip(columns, widths[1:], strict=True):
            cells.append(str(table[name].get(row, "")).ljust(width))
        lines.append(" | ".join(cells))
    lines.append("(* = paper formula, † = cited claim, plain = computed exactly)")
    return "\n".join(lines)
