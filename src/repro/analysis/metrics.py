"""Exact graph metrics with scale-aware algorithm selection.

Diameter:

* vertex-transitive topologies (every Cayley graph here) need a **single
  BFS** — the eccentricity of any one vertex is the diameter.  This is the
  trick that makes the Figure 2 instance ``HB(3,8)`` (16384 nodes) exact,
  and with the :mod:`repro.fastgraph` CSR backend it now runs as one
  vectorized frontier sweep (65k+-node instances in well under a second).
* irregular topologies (hyper-deBruijn) use the batched boolean BFS kernel
  (:func:`repro.fastgraph.kernels.batched_eccentricities`) over all
  sources, falling back to networkx's bound-refining iFUB-style
  ``diameter(usebounds=True)`` when numpy/scipy are unavailable.

Average distance is exact on small instances and sampled (with a fixed
seed) beyond a configurable node budget; sampled pairs are grouped by
source so each unique source costs exactly one BFS.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Hashable

import networkx as nx

from repro.fastgraph.backend import get_fastgraph
from repro.topologies.base import Topology

__all__ = ["exact_diameter", "average_distance", "degree_profile"]


def _is_vertex_transitive(topology: Topology) -> bool:
    """Conservative check: all Cayley-graph-backed topologies qualify."""
    return hasattr(topology, "cayley") or hasattr(topology, "group") or (
        type(topology).__name__ == "Hypercube"
    )


def exact_diameter(topology: Topology, *, force_generic: bool = False) -> int:
    """The exact diameter, using the cheapest valid algorithm.

    ``force_generic=True`` bypasses the vertex-transitivity fast path (used
    by tests to confirm both paths agree).
    """
    if not force_generic and _is_vertex_transitive(topology):
        anchor = next(iter(topology.nodes()))
        return topology.eccentricity(anchor)
    try:
        return _batched_bfs_diameter(topology)
    except ImportError:
        graph = topology.to_networkx()
        return nx.diameter(graph, usebounds=True)


def _batched_bfs_diameter(topology: Topology, *, batch: int = 128) -> int:
    """All-eccentricities diameter via the batched boolean BFS kernel.

    Any topology qualifies: registered codecs give a vectorized CSR build,
    everything else gets an enumeration codec.  Raises ``ImportError`` when
    numpy/scipy are unavailable so callers can fall back to networkx.
    """
    fast = get_fastgraph(topology, allow_enumeration=True)
    if fast is None:
        raise ImportError("fast graph backend unavailable")
    from repro.fastgraph.kernels import batched_eccentricities

    eccentricities = batched_eccentricities(
        fast.csr, batch=batch, name=topology.name
    )
    return int(eccentricities.max())


def average_distance(
    topology: Topology,
    *,
    exact_node_budget: int = 2000,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Mean pairwise distance: exact below the budget, else sampled pairs.

    The sampled path draws all pairs first and groups them by source, so a
    source drawn ``k`` times costs one BFS instead of ``k``.
    """
    total_nodes = topology.num_nodes
    if total_nodes <= exact_node_budget:
        total = 0
        count = 0
        for v in topology.nodes():
            dist = topology.bfs_distances(v)
            total += sum(dist.values())
            count += len(dist) - 1  # exclude self
        return total / count if count else 0.0
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    targets_by_source: dict[Hashable, list[Hashable]] = defaultdict(list)
    for _ in range(samples):
        u, v = rng.sample(nodes, 2)
        targets_by_source[u].append(v)
    fast = get_fastgraph(topology)
    total = 0
    for u, targets in targets_by_source.items():
        if fast is not None:
            dist = fast.distances_array(u)
            total += int(sum(dist[fast.rank(v)] for v in targets))
        else:
            dist = topology.bfs_distances(u)
            total += sum(dist[v] for v in targets)
    return total / samples


def degree_profile(topology: Topology) -> dict[int, int]:
    """Histogram ``{degree: node count}`` — Figure 1's regularity evidence."""
    profile: dict[int, int] = {}
    for v in topology.nodes():
        d = topology.degree(v)
        profile[d] = profile.get(d, 0) + 1
    return dict(sorted(profile.items()))
