"""Exact graph metrics with scale-aware algorithm selection.

Diameter:

* vertex-transitive topologies (every Cayley graph here) need a **single
  BFS** — the eccentricity of any one vertex is the diameter.  This is the
  trick that makes the Figure 2 instance ``HB(3,8)`` (16384 nodes) exact.
* irregular topologies (hyper-deBruijn) use networkx's bound-refining
  iFUB-style ``diameter(usebounds=True)``.

Average distance is exact on small instances and sampled (with a fixed
seed) beyond a configurable node budget.
"""

from __future__ import annotations

import random
from typing import Hashable

import networkx as nx

from repro.topologies.base import Topology

__all__ = ["exact_diameter", "average_distance", "degree_profile"]


def _is_vertex_transitive(topology: Topology) -> bool:
    """Conservative check: all Cayley-graph-backed topologies qualify."""
    return hasattr(topology, "cayley") or hasattr(topology, "group") or (
        type(topology).__name__ == "Hypercube"
    )


def exact_diameter(topology: Topology, *, force_generic: bool = False) -> int:
    """The exact diameter, using the cheapest valid algorithm.

    ``force_generic=True`` bypasses the vertex-transitivity fast path (used
    by tests to confirm both paths agree).
    """
    if not force_generic and _is_vertex_transitive(topology):
        anchor = next(iter(topology.nodes()))
        return topology.eccentricity(anchor)
    try:
        return _batched_bfs_diameter(topology)
    except ImportError:
        graph = topology.to_networkx()
        return nx.diameter(graph, usebounds=True)


def _batched_bfs_diameter(topology: Topology, *, batch: int = 128) -> int:
    """All-eccentricities diameter via batched boolean BFS (numpy/scipy).

    Runs BFS from every vertex, 128 sources at a time, as sparse-matrix ×
    dense-boolean products — roughly two orders of magnitude faster than
    per-source Python BFS on the 16k-node Figure 2 instances, and exact.
    """
    import numpy as np
    from scipy import sparse

    nodes = list(topology.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    total = len(nodes)
    rows: list[int] = []
    cols: list[int] = []
    for u in nodes:
        ui = index[u]
        for v in topology.neighbors(u):
            rows.append(ui)
            cols.append(index[v])
    adjacency = sparse.csr_matrix(
        (np.ones(len(rows), dtype=np.uint8), (rows, cols)), shape=(total, total)
    )
    diameter = 0
    for start in range(0, total, batch):
        width = min(batch, total - start)
        visited = np.zeros((total, width), dtype=bool)
        visited[np.arange(start, start + width), np.arange(width)] = True
        frontier = visited.copy()
        depth = 0
        eccentricity = np.zeros(width, dtype=np.int64)
        while frontier.any():
            reached = (adjacency @ frontier.astype(np.uint8)) > 0
            frontier = reached & ~visited
            visited |= frontier
            depth += 1
            eccentricity[frontier.any(axis=0)] = depth
        if not visited.all():
            from repro.errors import DisconnectedError

            raise DisconnectedError(f"{topology.name} is disconnected")
        diameter = max(diameter, int(eccentricity.max()))
    return diameter


def average_distance(
    topology: Topology,
    *,
    exact_node_budget: int = 2000,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Mean pairwise distance: exact below the budget, else sampled pairs."""
    total_nodes = topology.num_nodes
    if total_nodes <= exact_node_budget:
        total = 0
        count = 0
        for v in topology.nodes():
            dist = topology.bfs_distances(v)
            total += sum(dist.values())
            count += len(dist) - 1  # exclude self
        return total / count if count else 0.0
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    total = 0
    for _ in range(samples):
        u, v = rng.sample(nodes, 2)
        dist = topology.bfs_distances(u)
        total += dist[v]
    return total / samples


def degree_profile(topology: Topology) -> dict[int, int]:
    """Histogram ``{degree: node count}`` — Figure 1's regularity evidence."""
    profile: dict[int, int] = {}
    for v in topology.nodes():
        d = topology.degree(v)
        profile[d] = profile.get(d, 0) + 1
    return dict(sorted(profile.items()))
