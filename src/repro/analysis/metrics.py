"""Exact graph metrics with scale-aware algorithm selection.

Diameter:

* product topologies (hyper-butterfly, hyper-deBruijn, generic Cartesian
  products) decompose: the diameter is the sum of factor diameters
  (Remark 6/8), computed by :mod:`repro.analysis.decompose` from factor
  histograms without touching the product — exact at *any* scale;
* vertex-transitive topologies (declared via
  :attr:`repro.topologies.base.Topology.is_vertex_transitive`) need a
  **single BFS** — the eccentricity of any one vertex is the diameter;
* irregular non-product topologies use the batched boolean BFS kernel
  (:func:`repro.fastgraph.kernels.batched_eccentricities`) over all
  sources — spread over a process pool with ``jobs > 1`` — falling back
  to networkx's bound-refining iFUB-style ``diameter(usebounds=True)``
  when numpy/scipy are unavailable.

Average distance is **exact at any scale** for product topologies (factor
histogram convolution); for everything else it is exact below a node
budget and sampled (with a fixed seed) beyond it, sampled pairs grouped
by source so each unique source costs exactly one BFS.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Hashable

import networkx as nx

from repro.analysis.decompose import product_average_distance, product_diameter
from repro.fastgraph.backend import get_fastgraph
from repro.topologies.base import Topology

__all__ = ["exact_diameter", "average_distance", "degree_profile"]


def exact_diameter(
    topology: Topology,
    *,
    force_generic: bool = False,
    jobs: int = 1,
    backend: str | None = None,
) -> int:
    """The exact diameter, using the cheapest valid algorithm.

    ``force_generic=True`` bypasses both the product-decomposition and the
    vertex-transitivity fast paths (used by tests to confirm all paths
    agree).  ``jobs`` spreads the generic all-sources sweep over a process
    pool (it has no effect on the decomposition/transitive paths, which
    are already single-BFS or BFS-free).  ``backend`` pins the BFS
    substrate (``"csr"``, ``"implicit"``, ``"python"``) — pinning skips
    the BFS-free decomposition path so the requested engine actually
    runs; the vertex-transitive single-BFS shortcut stays valid (it runs
    that engine) unless ``force_generic`` disables it too.
    """
    pinned = backend not in (None, "auto")
    if not force_generic:
        if not pinned:
            decomposed = product_diameter(topology)
            if decomposed is not None:
                return decomposed
        if topology.is_vertex_transitive:
            anchor = next(iter(topology.nodes()))
            return topology.eccentricity(anchor, backend=backend)
    try:
        return _batched_bfs_diameter(topology, jobs=jobs, backend=backend)
    except ImportError:
        graph = topology.to_networkx()
        return int(nx.diameter(graph, usebounds=True))


def _batched_bfs_diameter(
    topology: Topology,
    *,
    batch: int = 128,
    jobs: int = 1,
    backend: str | None = None,
) -> int:
    """All-eccentricities diameter via the batched boolean BFS kernel.

    Any topology qualifies: registered codecs give a vectorized CSR build,
    everything else gets an enumeration codec.  ``jobs > 1`` runs the
    sweep on a process pool (chunked sources, deterministic reduction —
    the result is bit-identical for any job count); the implicit substrate
    (resolved or pinned by ``backend``) sweeps CSR-free through the same
    chunk/reduce path.  Raises ``ImportError`` when numpy/scipy are
    unavailable so callers can fall back to networkx.
    """
    if backend == "python":
        return max(
            topology.eccentricity(v, backend="python") for v in topology.nodes()
        )
    fast = get_fastgraph(topology, allow_enumeration=True)
    if fast is None:
        if backend in ("csr", "implicit"):
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"fastgraph is unavailable; cannot pin backend={backend!r}"
            )
        raise ImportError("fast graph backend unavailable")
    resolved = fast.select_backend(backend)
    if resolved == "implicit" or jobs > 1:
        from repro.fastgraph.parallel import parallel_sweep

        payload = fast.codec if resolved == "implicit" else fast.csr
        result = parallel_sweep(
            payload, jobs=jobs, batch=batch, name=topology.name
        )
        return int(result.eccentricities.max())
    from repro.fastgraph.kernels import batched_eccentricities

    eccentricities = batched_eccentricities(
        fast.csr, batch=batch, name=topology.name
    )
    return int(eccentricities.max())


def average_distance(
    topology: Topology,
    *,
    exact_node_budget: int = 2000,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Mean pairwise distance over distinct ordered pairs.

    Product topologies are **exact at any scale** via factor-histogram
    convolution (bit-identical to brute-force BFS aggregation, at a tiny
    fraction of the cost).  Non-product topologies are exact below the
    node budget; beyond it, sampled pairs are drawn first and grouped by
    source, so a source drawn ``k`` times costs one BFS instead of ``k``.
    """
    decomposed = product_average_distance(topology)
    if decomposed is not None:
        return decomposed
    total_nodes = topology.num_nodes
    if total_nodes <= exact_node_budget:
        total = 0
        count = 0
        for v in topology.nodes():
            dist = topology.bfs_distances(v)
            total += sum(dist.values())
            count += len(dist) - 1  # exclude self
        return total / count if count else 0.0
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    targets_by_source: dict[Hashable, list[Hashable]] = defaultdict(list)
    for _ in range(samples):
        u, v = rng.sample(nodes, 2)
        targets_by_source[u].append(v)
    fast = get_fastgraph(topology)
    total = 0
    for u, targets in targets_by_source.items():
        if fast is not None:
            dist = fast.distances_array(u)
            total += int(sum(dist[fast.rank(v)] for v in targets))
        else:
            label_dist = topology.bfs_distances(u)
            total += sum(label_dist[v] for v in targets)
    return total / samples


def degree_profile(topology: Topology) -> dict[int, int]:
    """Histogram ``{degree: node count}`` — Figure 1's regularity evidence."""
    profile: dict[int, int] = {}
    for v in topology.nodes():
        d = topology.degree(v)
        profile[d] = profile.get(d, 0) + 1
    return dict(sorted(profile.items()))
