"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while still letting genuine programming errors
(``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidLabelError",
    "RoutingError",
    "DisconnectedError",
    "EmbeddingError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A topology or algorithm parameter is outside its legal range.

    Examples: a butterfly dimension ``n < 3`` (Remark 3 of the paper requires
    ``n >= 3`` for the generator set to be free of fixed points), or a
    negative hypercube dimension.
    """


class InvalidLabelError(ReproError, ValueError):
    """A node label does not belong to the topology it was used with."""


class RoutingError(ReproError):
    """A routing request could not be satisfied.

    Raised, for example, when fault-tolerant routing is asked to route
    between nodes that a fault set has actually disconnected, or when more
    disjoint paths are requested than the graph's connectivity supports.
    """


class DisconnectedError(RoutingError):
    """The (possibly faulted) network is disconnected between the endpoints."""


class EmbeddingError(ReproError):
    """A guest graph cannot be embedded with the requested parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""
