"""Resilient routing runtime: escalation with graceful degradation.

:class:`ResilientRouter` wraps the paper's fault-tolerance machinery into
a runtime suitable for dynamic fault environments.  A route request
escalates through three stages:

1. **disjoint** — Theorem 5's ``m + 4`` internally disjoint paths (cached
   per pair: the family does not depend on the fault set).  Guaranteed to
   contain a fault-free member whenever the *total* number of node plus
   link faults is at most ``m + 3``: internal disjointness means each
   faulty node — and, because the paths also share no edges, each faulty
   link — can kill at most one member.
2. **adaptive** — shortest-path BFS on the faulted graph (node *and* link
   faults respected), for the regime beyond the guarantee where the
   network is degraded but not yet partitioned.
3. **structured failure** — a :class:`DegradedRouteError` carrying a
   :class:`ReachabilityReport`: how much of the healthy network the source
   can still reach, i.e. best-effort partial reachability instead of a
   bare exception.

Adaptive results are cached per ``(pair, fault configuration)`` and the
whole adaptive cache is dropped on any fault event (wire
:meth:`ResilientRouter.on_fault_event` to
:meth:`repro.simulation.network.NetworkSimulator.add_fault_listener`);
the fault-independent disjoint families survive invalidation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.core.disjoint_paths import disjoint_paths
from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import DisconnectedError, RoutingError

if TYPE_CHECKING:
    from repro.faults.dynamic import FaultEvent

__all__ = [
    "RouteOutcome",
    "ReachabilityReport",
    "DegradedRouteError",
    "ResilientRouter",
]


@dataclass(frozen=True)
class RouteOutcome:
    """A found route plus which escalation stage produced it."""

    path: tuple
    strategy: str  # "disjoint" | "adaptive"

    @property
    def length(self) -> int:
        return len(self.path) - 1


@dataclass(frozen=True)
class ReachabilityReport:
    """Best-effort connectivity summary from one source under faults."""

    source: Hashable
    reachable: int  # healthy nodes reachable from source (incl. itself)
    healthy: int  # all healthy nodes
    node_faults: int
    link_faults: int

    @property
    def fraction(self) -> float:
        return self.reachable / self.healthy if self.healthy else 0.0


class DegradedRouteError(DisconnectedError):
    """No route exists; carries the partial-reachability report."""

    def __init__(self, message: str, report: ReachabilityReport) -> None:
        super().__init__(message)
        self.report = report


def _canonical_link(u: Hashable, v: Hashable) -> tuple[Hashable, Hashable]:
    """Deferred :func:`repro.faults.model.canonical_link` — core sits below
    faults in the layer DAG, so the dependency must not bind at import time
    (reprolint HB401)."""
    from repro.faults.model import canonical_link

    return canonical_link(u, v)


def _normalize_links(links: Iterable) -> frozenset:
    return frozenset(_canonical_link(u, v) for u, v in links)


class ResilientRouter:
    """Disjoint → adaptive → structured-failure routing on ``HB(m, n)``."""

    def __init__(self, hb: HyperButterfly) -> None:
        self.hb = hb
        self._families: dict[tuple[HBNode, HBNode], tuple[tuple, ...]] = {}
        self._adaptive: dict[tuple, tuple | None] = {}
        self._standing_nodes: frozenset = frozenset()
        self._standing_links: frozenset = frozenset()
        self.invalidations = 0

    # -- cache management ----------------------------------------------------

    def invalidate(self) -> None:
        """Drop every fault-dependent cached route."""
        self._adaptive.clear()
        self.invalidations += 1

    def on_fault_event(self, event: FaultEvent) -> None:
        """Fault listener hook for :class:`NetworkSimulator`."""
        self.invalidate()

    # -- standing faults -----------------------------------------------------

    @property
    def standing_node_faults(self) -> frozenset:
        return self._standing_nodes

    @property
    def standing_link_faults(self) -> frozenset:
        return self._standing_links

    def apply_faults(
        self,
        node_faults: Iterable[HBNode] = (),
        link_faults: Iterable[tuple[HBNode, HBNode]] = (),
    ) -> None:
        """Install a whole fault configuration in one call.

        Accepts any node/link iterables — in particular a
        :class:`~repro.faults.model.FaultSet` /
        :class:`~repro.faults.model.LinkFaultSet` or the lowering of a
        :class:`~repro.faults.structures.StructureFault` — replacing any
        previously standing configuration.  The adaptive cache is
        invalidated here, in the same call: per-event listener ticks never
        fire on this path, so skipping the invalidation would serve routes
        cached under the previous fault set (the regression this API
        fixes).  Standing faults merge with the per-call ``node_faults`` /
        ``link_faults`` of :meth:`route_ex` / :meth:`reachability`.
        """
        self._standing_nodes = frozenset(node_faults)
        self._standing_links = _normalize_links(link_faults)
        self.invalidate()

    def clear_faults(self) -> None:
        """Heal the standing fault configuration (invalidates the cache)."""
        self._standing_nodes = frozenset()
        self._standing_links = frozenset()
        self.invalidate()

    # -- guarantees ----------------------------------------------------------

    def max_guaranteed_faults(self) -> int:
        """``m + 3`` total (node + link) faults — Corollary 1's regime."""
        return self.hb.m + 3

    # -- routing -------------------------------------------------------------

    def _family(self, u: HBNode, v: HBNode) -> tuple[tuple, ...]:
        key = (u, v)
        family = self._families.get(key)
        if family is None:
            family = tuple(tuple(p) for p in disjoint_paths(self.hb, u, v))
            self._families[key] = family
        return family

    @staticmethod
    def _path_ok(path: tuple, nodes: frozenset, links: frozenset) -> bool:
        if nodes and not nodes.isdisjoint(path):
            return False
        if links:
            for a, b in zip(path, path[1:], strict=False):
                if _canonical_link(a, b) in links:
                    return False
        return True

    def _adaptive_path(
        self, u: HBNode, v: HBNode, nodes: frozenset, links: frozenset
    ) -> tuple | None:
        key = (u, v, nodes, links)
        if key in self._adaptive:
            return self._adaptive[key]
        if links:
            raw = self._bfs_avoiding(u, v, nodes, links)
        else:
            raw = self.hb.bfs_shortest_path(u, v, blocked=nodes)
        path = tuple(raw) if raw is not None else None
        self._adaptive[key] = path
        return path

    def _bfs_avoiding(
        self, u: HBNode, v: HBNode, nodes: frozenset, links: frozenset
    ) -> list | None:
        """Label BFS that skips faulty nodes *and* faulty links."""
        parent: dict = {u: u}
        queue = deque([u])
        while queue:
            a = queue.popleft()
            for b in self.hb.neighbors(a):
                if b in parent or b in nodes:
                    continue
                if _canonical_link(a, b) in links:
                    continue
                parent[b] = a
                if b == v:
                    path = [b]
                    while path[-1] != u:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(b)
        return None

    def route_ex(
        self,
        u: HBNode,
        v: HBNode,
        *,
        node_faults: Iterable[HBNode] = (),
        link_faults: Iterable[tuple[HBNode, HBNode]] = (),
    ) -> RouteOutcome:
        """Escalating route ``u → v``; raises :class:`DegradedRouteError`
        (with a reachability report) when the faults partition the pair.
        Per-call faults are merged with the standing configuration
        installed by :meth:`apply_faults`."""
        nodes = self._standing_nodes | frozenset(node_faults)
        links = self._standing_links | _normalize_links(link_faults)
        self.hb.validate_node(u)
        self.hb.validate_node(v)
        if u in nodes or v in nodes:
            raise RoutingError("an endpoint is itself faulty")
        if u == v:
            return RouteOutcome(path=(u,), strategy="disjoint")
        # stage 1: the paper's disjoint family (shortest surviving member)
        best: tuple | None = None
        for path in self._family(u, v):
            if self._path_ok(path, nodes, links):
                if best is None or len(path) < len(best):
                    best = path
        if best is not None:
            return RouteOutcome(path=best, strategy="disjoint")
        if len(nodes) + len(links) <= self.max_guaranteed_faults():
            raise RoutingError(
                "internal error: a disjoint family with <= m+3 total faults "
                "must contain a fault-free path"
            )
        # stage 2: adaptive BFS on the degraded graph
        path = self._adaptive_path(u, v, nodes, links)
        if path is not None:
            return RouteOutcome(path=path, strategy="adaptive")
        # stage 3: structured failure with partial reachability
        report = self.reachability(u, node_faults=nodes, link_faults=links)
        raise DegradedRouteError(
            f"{len(nodes)} node + {len(links)} link faults exceed the "
            f"guaranteed tolerance {self.max_guaranteed_faults()} and "
            f"disconnect {u!r} from {v!r}; source still reaches "
            f"{report.reachable}/{report.healthy} healthy nodes",
            report,
        )

    def route(
        self,
        u: HBNode,
        v: HBNode,
        *,
        node_faults: Iterable[HBNode] = (),
        link_faults: Iterable[tuple[HBNode, HBNode]] = (),
    ) -> list[HBNode]:
        """The escalating route as a plain node list."""
        return list(
            self.route_ex(u, v, node_faults=node_faults, link_faults=link_faults).path
        )

    def reachability(
        self,
        u: HBNode,
        *,
        node_faults: Iterable[HBNode] = (),
        link_faults: Iterable[tuple[HBNode, HBNode]] = (),
    ) -> ReachabilityReport:
        """How much of the healthy network ``u`` can still reach (per-call
        faults merged with the standing configuration)."""
        nodes = self._standing_nodes | frozenset(node_faults)
        links = self._standing_links | _normalize_links(link_faults)
        self.hb.validate_node(u)
        if u in nodes:
            return ReachabilityReport(
                source=u,
                reachable=0,
                healthy=self.hb.num_nodes - len(nodes),
                node_faults=len(nodes),
                link_faults=len(links),
            )
        if links:
            seen = {u}
            queue = deque([u])
            while queue:
                a = queue.popleft()
                for b in self.hb.neighbors(a):
                    if b in seen or b in nodes:
                        continue
                    if _canonical_link(a, b) in links:
                        continue
                    seen.add(b)
                    queue.append(b)
            reachable = len(seen)
        else:
            reachable = len(self.hb.bfs_distances(u, blocked=nodes))
        return ReachabilityReport(
            source=u,
            reachable=reachable,
            healthy=self.hb.num_nodes - len(nodes),
            node_faults=len(nodes),
            link_faults=len(links),
        )
