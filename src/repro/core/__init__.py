"""The paper's primary contribution: the hyper-butterfly graph ``HB(m, n)``.

Modules:

* :mod:`repro.core.hyperbutterfly` — the graph itself (Definition 3,
  Theorems 1–2).
* :mod:`repro.core.labels` — two-part label helpers.
* :mod:`repro.core.routing` — optimal point-to-point routing (Section 3).
* :mod:`repro.core.disjoint_paths` — the ``m + 4`` node-disjoint paths of
  Theorem 5.
* :mod:`repro.core.fault_routing` — fault-tolerant routing (Remark 10).
* :mod:`repro.core.resilient` — escalating resilient router with graceful
  degradation past the ``m + 3`` guarantee.
* :mod:`repro.core.broadcast` — the broadcast extension teased in the
  paper's conclusion.
"""

from repro.core.hyperbutterfly import HyperButterfly
from repro.core.labels import format_hb_node, parse_hb_node
from repro.core.routing import HBRouter, RouteResult
from repro.core.disjoint_paths import disjoint_paths, verify_disjoint_paths
from repro.core.fault_routing import FaultTolerantRouter
from repro.core.resilient import (
    ResilientRouter,
    RouteOutcome,
    ReachabilityReport,
    DegradedRouteError,
)
from repro.core.broadcast import broadcast_tree, broadcast_rounds
from repro.core.partition import (
    SubHBPartition,
    partition_by_cube_bits,
    expansion_embedding,
)

__all__ = [
    "HyperButterfly",
    "format_hb_node",
    "parse_hb_node",
    "HBRouter",
    "RouteResult",
    "disjoint_paths",
    "verify_disjoint_paths",
    "FaultTolerantRouter",
    "ResilientRouter",
    "RouteOutcome",
    "ReachabilityReport",
    "DegradedRouteError",
    "broadcast_tree",
    "broadcast_rounds",
    "SubHBPartition",
    "partition_by_cube_bits",
    "expansion_embedding",
]
