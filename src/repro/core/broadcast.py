"""Broadcasting on ``HB(m, n)`` — the extension teased in the conclusion.

The paper's conclusion announces an "asymptotically optimal broadcasting
algorithm" without detail; we provide the natural one and the machinery to
evaluate it (bench E8):

* **all-port model** (a node informs all neighbors each round): flooding
  along the BFS tree is optimal; rounds = eccentricity of the source =
  diameter (vertex transitivity).
* **single-port model** (one neighbor per round): a two-phase structured
  scheme — recursive doubling over the hypercube dimensions inside the
  source's cube copy (``m`` rounds), then a greedy butterfly broadcast in
  every butterfly copy in parallel — plus a fully greedy scheduler for
  comparison.  Lower bound: ``max(diameter, ceil(log2 N))``; "asymptotically
  optimal" means a constant factor of that.

All functions are generic over :class:`repro.topologies.base.Topology`
(so the same harness measures the hyper-deBruijn baseline), with
HB-specific structure used only by :func:`structured_broadcast_schedule`.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import SimulationError
from repro.topologies.base import Topology

__all__ = [
    "broadcast_tree",
    "broadcast_rounds",
    "greedy_single_port_schedule",
    "structured_broadcast_schedule",
    "broadcast_lower_bound",
]


def broadcast_tree(topology: Topology, root: Hashable) -> dict[Hashable, Hashable]:
    """BFS broadcast tree: maps every non-root node to its parent.

    In the all-port model, flooding down this tree is an optimal broadcast;
    its depth (the root's eccentricity) is the round count.
    """
    topology.validate_node(root)
    from collections import deque

    parent: dict[Hashable, Hashable] = {}
    seen = {root}
    queue = deque([root])
    while queue:
        x = queue.popleft()
        for y in topology.neighbors(x):
            if y not in seen:
                seen.add(y)
                parent[y] = x
                queue.append(y)
    if len(seen) != topology.num_nodes:
        raise SimulationError(f"{topology.name} is not connected from {root!r}")
    return parent


def greedy_single_port_schedule(
    topology: Topology, root: Hashable
) -> list[list[tuple[Hashable, Hashable]]]:
    """Greedy single-port broadcast: per-round ``(sender, receiver)`` lists.

    Each round, every informed node sends to its first (deterministic
    neighbor order) still-uninformed neighbor; a node is claimed by at most
    one sender per round.  Simple, generic, and a reasonable baseline —
    within a small constant of optimal on all the families studied here.
    """
    topology.validate_node(root)
    informed = {root}
    frontier_order = [root]
    rounds: list[list[tuple[Hashable, Hashable]]] = []
    total = topology.num_nodes
    while len(informed) < total:
        sends: list[tuple[Hashable, Hashable]] = []
        claimed: set[Hashable] = set()
        for sender in frontier_order:
            for candidate in topology.neighbors(sender):
                if candidate not in informed and candidate not in claimed:
                    claimed.add(candidate)
                    sends.append((sender, candidate))
                    break
        if not sends:
            raise SimulationError(
                f"single-port broadcast stalled on {topology.name} (disconnected?)"
            )
        for _, receiver in sends:
            informed.add(receiver)
            frontier_order.append(receiver)
        rounds.append(sends)
    return rounds


def structured_broadcast_schedule(
    hb: HyperButterfly, root: HBNode
) -> list[list[tuple[HBNode, HBNode]]]:
    """Two-phase single-port broadcast exploiting the product structure.

    Phase 1 (``m`` rounds): recursive doubling over hypercube dimension
    ``i`` in round ``i`` — after the phase, all nodes of the cube copy
    ``(H_m, b_root)`` are informed.

    Phase 2: every butterfly copy ``(x, B_n)`` runs the greedy single-port
    butterfly broadcast from ``(x, b_root)`` in parallel, all copies using
    the same schedule (so the phase adds exactly the butterfly's greedy
    broadcast time, independent of ``m``).

    Total rounds = ``m + T_greedy(B_n)`` = ``m + O(n)``, against the lower
    bound ``max(m + ⌊3n/2⌋, ⌈log2(n·2^{m+n})⌉)`` — asymptotically optimal.
    """
    hb.validate_node(root)
    h_root, b_root = root
    rounds: list[list[tuple[HBNode, HBNode]]] = []

    # Phase 1: hypercube recursive doubling within the copy (H_m, b_root)
    informed_words = [h_root]
    for i in range(hb.m):
        sends = []
        for x in list(informed_words):
            y = x ^ (1 << i)
            sends.append(((x, b_root), (y, b_root)))
            informed_words.append(y)
        rounds.append(sends)

    # Phase 2: identical greedy butterfly schedule in every cube word's copy
    fly_schedule = greedy_single_port_schedule(hb.butterfly, b_root)
    for fly_round in fly_schedule:
        sends = []
        for sender_b, receiver_b in fly_round:
            for x in informed_words:
                sends.append(((x, sender_b), (x, receiver_b)))
        rounds.append(sends)
    return rounds


def verify_schedule(
    topology: Topology,
    root: Hashable,
    rounds: list[list[tuple[Hashable, Hashable]]],
) -> None:
    """Raise :class:`SimulationError` unless the schedule is a legal
    single-port broadcast that informs every node."""
    informed = {root}
    for r, sends in enumerate(rounds):
        senders_used: set[Hashable] = set()
        newly: set[Hashable] = set()
        for sender, receiver in sends:
            if sender not in informed:
                raise SimulationError(f"round {r}: sender {sender!r} uninformed")
            if sender in senders_used:
                raise SimulationError(f"round {r}: sender {sender!r} used twice")
            if receiver in informed or receiver in newly:
                raise SimulationError(f"round {r}: receiver {receiver!r} duplicated")
            if not topology.has_edge(sender, receiver):
                raise SimulationError(f"round {r}: {sender!r}->{receiver!r} not an edge")
            senders_used.add(sender)
            newly.add(receiver)
        informed |= newly
    if len(informed) != topology.num_nodes:
        raise SimulationError(
            f"schedule informs {len(informed)} of {topology.num_nodes} nodes"
        )


def broadcast_rounds(
    topology: Topology,
    root: Hashable,
    *,
    model: str = "all-port",
) -> int:
    """Number of rounds to broadcast from ``root`` under ``model``.

    ``model="all-port"`` floods (rounds = eccentricity of the root);
    ``model="single-port"`` uses the greedy scheduler;
    ``model="structured"`` uses the two-phase HB scheme (HB instances only).
    """
    if model == "all-port":
        return topology.eccentricity(root)
    if model == "single-port":
        return len(greedy_single_port_schedule(topology, root))
    if model == "structured":
        if not isinstance(topology, HyperButterfly):
            raise SimulationError("structured broadcast is defined on HB only")
        return len(structured_broadcast_schedule(topology, root))
    raise SimulationError(f"unknown broadcast model {model!r}")


def broadcast_lower_bound(topology: Topology, *, diameter: int | None = None) -> int:
    """``max(diameter, ceil(log2 N))`` — valid for any single-port broadcast."""
    if diameter is None:
        diameter_fn = getattr(topology, "diameter_formula", None)
        if diameter_fn is None:
            raise SimulationError(
                "pass diameter= explicitly for topologies without a formula"
            )
        diameter = diameter_fn()
    return max(diameter, math.ceil(math.log2(topology.num_nodes)))
