"""The ``m + 4`` node-disjoint paths of Theorem 5 (and Corollary 1).

Between any two distinct nodes ``u = (h, b)`` and ``v = (h', b')`` of
``HB(m, n)`` there are ``m + 4`` internally disjoint paths.  The paper's
proof is constructive with three cases:

* **Case 1** (``h ≠ h'``, ``b = b'``): the ``m`` hypercube-disjoint paths
  inside the copy ``(H_m, b)``, plus 4 detours through the butterfly
  neighbors ``(h, b^{(j)})`` that cross their own hypercube copy.
* **Case 2** (``h = h'``, ``b ≠ b'``): the 4 butterfly-disjoint paths
  inside ``(h, B_n)``, plus ``m`` detours through the hypercube neighbors
  ``(h^{(i)}, b)`` that cross their own butterfly copy.
* **Case 3** (both differ): ``m`` cube-first paths
  ``u → (h^{(i)}, b) → [butterfly route] → (h^{(i)}, b') → [cube tail] → v``
  and 4 fly-first paths
  ``u → (h, b^{(j)}) → [cube route] → (h', b^{(j)}) → [fly tail] → v``.

Reproduction note (recorded in EXPERIMENTS.md): the paper asserts the
case 3 family is "easy to see" disjoint, but the construction as literally
stated can fail in two corner situations:

1. ``dist(h, h') = 1``: the cube-first path through ``h^{(i)} = h'`` ends
   with a butterfly hop into ``v``, so 5 paths would enter ``v`` through
   its 4 butterfly edges;
2. ``b'`` adjacent to ``b``: symmetrically, ``m + 1`` paths would enter
   ``v`` through its ``m`` hypercube edges.

Theorem 5 itself is still true (``HB`` is ``(m+4)``-connected — verified
exactly by max-flow on small instances), so this module implements the
paper's construction for the generic case — with the node-to-set tail
families extracted by copy-local max-flow, exactly the black boxes the
proof invokes — detects the corner cases, and falls back to an exact
global Menger (max-flow) family whenever the constructive skeleton cannot
be completed.  Every returned family is verified before being handed back.
"""

from __future__ import annotations

from typing import Literal

import networkx as nx

from repro._bits import set_bits
from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import RoutingError
from repro.routing.base import paths_internally_disjoint, validate_path
from repro.routing.butterfly import butterfly_route_walk
from repro.routing.flows import node_to_set_disjoint_paths, vertex_disjoint_paths
from repro.routing.hypercube import hypercube_disjoint_paths, hypercube_route

__all__ = [
    "construction_case",
    "disjoint_paths",
    "disjoint_paths_with_info",
    "verify_disjoint_paths",
]


def construction_case(u: HBNode, v: HBNode) -> int:
    """Which Theorem 5 case the pair ``(u, v)`` falls into (1, 2 or 3)."""
    if u == v:
        raise RoutingError("disjoint paths require distinct endpoints")
    h_differs = u[0] != v[0]
    b_differs = u[1] != v[1]
    if h_differs and not b_differs:
        return 1
    if b_differs and not h_differs:
        return 2
    return 3


def _fly_graph(hb: HyperButterfly) -> nx.Graph:
    """Cached explicit ``B_n`` (factor) graph."""
    graph = getattr(hb, "_fly_nx_cache", None)
    if graph is None:
        graph = hb.butterfly.to_networkx()
        hb._fly_nx_cache = graph
    return graph


def _cube_graph(hb: HyperButterfly) -> nx.Graph:
    """Cached explicit ``H_m`` (factor) graph."""
    graph = getattr(hb, "_cube_nx_cache", None)
    if graph is None:
        graph = hb.hypercube.to_networkx()
        hb._cube_nx_cache = graph
    return graph


def _lift_cube(path_words: list[int], b: tuple[int, int]) -> list[HBNode]:
    return [(x, b) for x in path_words]


def _lift_fly(h: int, path_fly: list[tuple[int, int]]) -> list[HBNode]:
    return [(h, y) for y in path_fly]


# --------------------------------------------------------------------------
# Case 1: same butterfly part
# --------------------------------------------------------------------------


def _case1(hb: HyperButterfly, u: HBNode, v: HBNode) -> list[list[HBNode]]:
    h, b = u
    h2, _ = v
    paths = [
        _lift_cube(p, b) for p in hypercube_disjoint_paths(hb.m, h, h2)
    ]
    cube_route = hypercube_route(hb.m, h, h2)
    for s in hb.fly_group.butterfly_generators():
        bj = hb.fly_group.multiply(b, s)
        paths.append([u] + _lift_cube(cube_route, bj) + [v])
    return paths


# --------------------------------------------------------------------------
# Case 2: same hypercube part
# --------------------------------------------------------------------------


def _case2(hb: HyperButterfly, u: HBNode, v: HBNode) -> list[list[HBNode]]:
    h, b = u
    _, b2 = v
    fly_paths = vertex_disjoint_paths(_fly_graph(hb), b, b2, k=4)
    paths = [_lift_fly(h, p) for p in fly_paths]
    fly_route = butterfly_route_walk(hb.n, b, b2)
    for i in range(hb.m):
        hi = h ^ (1 << i)
        paths.append([u] + _lift_fly(hi, fly_route) + [v])
    return paths


# --------------------------------------------------------------------------
# Case 3: both parts differ
# --------------------------------------------------------------------------


class _Case3Builder:
    """Builds the case-3 family, including corner-case repairs.

    The generic skeleton (see module docstring) fails in two corners; both
    admit local *repairs* that keep the construction copy-local:

    * ``dist(h, h') = 1`` with differing dimension ``i*``: the cube-first
      path for ``i*`` is rerouted as ``u → (h', b) → (h'', b) →
      [fly route in copy h''] → (h'', b') → v`` where ``h'' = h' ⊕ e_k``
      (``k ≠ i*``) is a fresh cube word at distance 2 from ``h``.  The path
      then enters ``v`` through hypercube neighbor ``h''`` (reserved from
      the cube-tail flow), restoring the 4-butterfly/m-hypercube entry
      balance at ``v``.  Requires ``m ≥ 2``.

    * ``b'`` adjacent to ``b`` (``b_{j*} = b'``): the fly-first path for
      ``j*`` is rerouted as ``u → (h, b') → (h, b''') → [cube route in copy
      b'''] → (h', b''') → v`` where ``b''' ∈ N(b') \\ ({b} ∪ N(b))`` is a
      fresh butterfly word at distance 2 from ``b``; the path enters ``v``
      through butterfly neighbor ``b'''`` (blocked from the fly-tail flow).

    If a repair's preconditions fail (``m = 1``, or no fresh ``b'''``
    exists), :class:`RoutingError` propagates and the caller falls back to
    the exact max-flow family.
    """

    def __init__(self, hb: HyperButterfly, u: HBNode, v: HBNode) -> None:
        self.hb = hb
        self.u, self.v = u, v
        self.h, self.b = u
        self.h2, self.b2 = v
        self.m, self.n = hb.m, hb.n
        self.b_neighbors = [
            hb.fly_group.multiply(self.b, s)
            for s in hb.fly_group.butterfly_generators()
        ]
        self.h_neighbors = [self.h ^ (1 << i) for i in range(self.m)]
        self.diff = set_bits(self.h ^ self.h2)

        # corner detection
        self.i_star = (
            self.h_neighbors.index(self.h2) if self.h2 in self.h_neighbors else None
        )
        self.j_star = (
            self.b_neighbors.index(self.b2) if self.b2 in self.b_neighbors else None
        )

        # repair resources (chosen in _plan_repairs)
        self.h_fresh: int | None = None  # h'' for the dist-1 repair
        self.b_fresh: tuple[int, int] | None = None  # b''' for the adjacency repair

    # -- planning ---------------------------------------------------------

    def _plan_repairs(self) -> None:
        if self.i_star is not None:
            if self.m < 2:
                raise RoutingError(
                    "case-3 dist-1 corner with m = 1 has no copy-local repair"
                )
            k = next(i for i in range(self.m) if i != self.i_star)
            self.h_fresh = self.h2 ^ (1 << k)
        if self.j_star is not None:
            fly = self.hb.butterfly
            candidates = [
                y
                for y in fly.neighbors(self.b2)
                if y != self.b and y not in self.b_neighbors
            ]
            if not candidates:
                raise RoutingError(
                    "case-3 adjacency corner: no fresh butterfly word near b'"
                )
            self.b_fresh = candidates[0]

    # -- fly-first paths ---------------------------------------------------

    def _cube_segment_order(self, j: int) -> list[int]:
        d = len(self.diff)
        return self.diff[j % d :] + self.diff[: j % d]

    def _build_fly_first(self) -> list[list[HBNode]]:
        hb = self.hb
        # cube segments, each in its own copy; record (copy word, segment)
        self.cube_segments: list[tuple[tuple[int, int], list[int]]] = []
        for j, bj in enumerate(self.b_neighbors):
            copy = self.b_fresh if j == self.j_star else bj
            self.cube_segments.append(
                (copy, hypercube_route(self.m, self.h, self.h2, order=self._cube_segment_order(j)))
            )

        # fly tails inside (h', B_n); the repaired j* supplies its own entry
        tail_sources = [
            bj for j, bj in enumerate(self.b_neighbors) if j != self.j_star
        ]
        blocked: set = set()
        if self.i_star is not None:
            blocked.add(self.b)  # (h', b) is owned by the repaired cube-first path
        if self.b_fresh is not None:
            blocked.add(self.b_fresh)  # (h', b''') is the repaired path's entry
        fly_tails = node_to_set_disjoint_paths(
            _fly_graph(hb), tail_sources, self.b2, blocked=blocked
        )
        tail_by_source = dict(zip(tail_sources, fly_tails, strict=True))

        paths: list[list[HBNode]] = []
        for j, bj in enumerate(self.b_neighbors):
            copy, segment = self.cube_segments[j]
            if j == self.j_star:
                # u → (h, b') → (h, b''') → cube route in copy b''' → (h', b''') → v
                path = (
                    [self.u, (self.h, self.b2)]
                    + _lift_cube(segment, copy)
                    + [self.v]
                )
            else:
                path = (
                    [self.u]
                    + _lift_cube(segment, copy)
                    + _lift_fly(self.h2, tail_by_source[bj])[1:]
                )
            paths.append(path)
        return paths

    # -- cube-first paths ---------------------------------------------------

    def _fly_collision_blocks(self, hi: int) -> frozenset:
        """Butterfly words owned by a fly-first cube segment passing ``hi``."""
        return frozenset(
            copy for copy, segment in self.cube_segments if hi in segment
        )

    def _build_cube_first(self) -> list[list[HBNode]]:
        hb = self.hb
        fly_segments: dict[int, list] = {}
        for i, hi in enumerate(self.h_neighbors):
            if i == self.i_star:
                continue
            seg = hb.butterfly.bfs_shortest_path(
                self.b, self.b2, blocked=self._fly_collision_blocks(hi)
            )
            if seg is None:
                raise RoutingError(
                    "butterfly copy disconnected under collision avoidance"
                )
            fly_segments[i] = seg

        tail_sources = [
            hi for i, hi in enumerate(self.h_neighbors) if i != self.i_star
        ]
        blocked: set = set()
        if self.h_fresh is not None:
            blocked.add(self.h_fresh)  # reserved entry of the repaired path
        if self.j_star is not None:
            blocked.add(self.h)  # (h, b') is owned by the repaired fly-first path
        cube_tails = node_to_set_disjoint_paths(
            _cube_graph(hb), tail_sources, self.h2, blocked=blocked
        )
        tail_by_source = dict(zip(tail_sources, cube_tails, strict=True))

        paths: list[list[HBNode]] = []
        for i, hi in enumerate(self.h_neighbors):
            if i == self.i_star:
                # u → (h', b) → (h'', b) → fly route in copy h'' → (h'', b') → v
                seg = hb.butterfly.bfs_shortest_path(
                    self.b, self.b2, blocked=self._fly_collision_blocks(self.h_fresh)
                )
                if seg is None:
                    raise RoutingError(
                        "repair copy disconnected under collision avoidance"
                    )
                path = (
                    [self.u, (self.h2, self.b)]
                    + _lift_fly(self.h_fresh, seg)
                    + [self.v]
                )
            else:
                path = (
                    [self.u]
                    + _lift_fly(hi, fly_segments[i])
                    + _lift_cube(tail_by_source[hi], self.b2)[1:]
                )
            paths.append(path)
        return paths

    def build(self) -> list[list[HBNode]]:
        self._plan_repairs()
        return self._build_fly_first() + self._build_cube_first()


def _case3(hb: HyperButterfly, u: HBNode, v: HBNode) -> list[list[HBNode]]:
    """Theorem 5 case 3 (both parts differ), with corner repairs."""
    return _Case3Builder(hb, u, v).build()


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------


def verify_disjoint_paths(
    hb: HyperButterfly, u: HBNode, v: HBNode, paths: list[list[HBNode]]
) -> None:
    """Raise :class:`RoutingError` unless ``paths`` is a valid Theorem 5
    family: ``m + 4`` simple ``u → v`` paths, internally disjoint."""
    expected = hb.m + 4
    if len(paths) != expected:
        raise RoutingError(f"expected {expected} paths, got {len(paths)}")
    for path in paths:
        validate_path(hb, path, source=u, target=v, simple=True)
    if not paths_internally_disjoint(paths):
        raise RoutingError("paths are not internally disjoint")


def disjoint_paths_with_info(
    hb: HyperButterfly,
    u: HBNode,
    v: HBNode,
    *,
    method: Literal["auto", "constructive", "flow"] = "auto",
) -> tuple[list[list[HBNode]], dict]:
    """Compute the Theorem 5 family plus provenance info.

    ``info`` records the construction ``case`` (1/2/3), the ``method`` that
    produced the family (``"constructive"`` or ``"flow"``), and — when the
    constructive skeleton was abandoned — the ``fallback_reason``.
    """
    hb.validate_node(u)
    hb.validate_node(v)
    case = construction_case(u, v)
    info: dict = {"case": case}

    if method in ("auto", "constructive"):
        try:
            builder = {1: _case1, 2: _case2, 3: _case3}[case]
            paths = builder(hb, u, v)
            verify_disjoint_paths(hb, u, v, paths)
            info["method"] = "constructive"
            return paths, info
        except RoutingError as exc:
            if method == "constructive":
                raise
            info["fallback_reason"] = str(exc)

    paths = vertex_disjoint_paths(hb.to_networkx(), u, v, k=hb.m + 4)
    verify_disjoint_paths(hb, u, v, paths)
    info["method"] = "flow"
    return paths, info


def disjoint_paths(
    hb: HyperButterfly,
    u: HBNode,
    v: HBNode,
    *,
    method: Literal["auto", "constructive", "flow"] = "auto",
) -> list[list[HBNode]]:
    """``m + 4`` internally disjoint ``u → v`` paths (Theorem 5).

    ``method="constructive"`` insists on the paper's construction (raises
    :class:`RoutingError` on its corner cases); ``method="flow"`` always
    uses global max-flow; ``"auto"`` tries the construction first.
    """
    paths, _ = disjoint_paths_with_info(hb, u, v, method=method)
    return paths
