"""Two-part label helpers for hyper-butterfly nodes.

A node of ``HB(m, n)`` is ``(h, b)`` where ``h`` is the ``m``-bit
*hypercube-part label* and ``b = (PI, CI)`` is the *butterfly-part label*
in the Cayley encoding of :mod:`repro.topologies.butterfly_cayley`.
The paper renders such a node as ``(x_{m-1} … x_0 ; t_{n-1} … t_0)``; these
helpers produce and parse an equivalent textual form, e.g. ``(101;bcA)``.
"""

from __future__ import annotations

import string

from repro._bits import format_word
from repro.errors import InvalidLabelError, InvalidParameterError

__all__ = ["format_hb_node", "parse_hb_node", "hypercube_part", "butterfly_part"]


def hypercube_part(node: tuple) -> int:
    """The hypercube-part label ``h`` of an ``HB`` node ``(h, b)``."""
    return node[0]


def butterfly_part(node: tuple) -> tuple[int, int]:
    """The butterfly-part label ``b = (PI, CI)`` of an ``HB`` node."""
    return node[1]


def format_hb_node(node: tuple, m: int, n: int) -> str:
    """Render ``(h, (PI, CI))`` as ``(bits;symbols)``.

    The hypercube part prints most-significant-bit first (paper order
    ``x_{m-1} … x_0``); the butterfly part prints its symbol sequence with
    complemented symbols uppercased (see
    :meth:`repro.topologies.butterfly_cayley.CayleyButterfly.format_node`).
    """
    from repro.topologies.butterfly_cayley import CayleyButterfly

    h, b = node
    return f"({format_word(h, m)};{CayleyButterfly(n).format_node(b)})"


def parse_hb_node(text: str, m: int, n: int) -> tuple[int, tuple[int, int]]:
    """Parse the output of :func:`format_hb_node` back into a node label."""
    from repro.topologies.butterfly_cayley import CayleyButterfly

    stripped = text.strip()
    if not (stripped.startswith("(") and stripped.endswith(")")):
        raise InvalidLabelError(f"malformed HB label {text!r}: missing parentheses")
    body = stripped[1:-1]
    if ";" not in body:
        raise InvalidLabelError(f"malformed HB label {text!r}: missing ';' separator")
    h_text, b_text = body.split(";", 1)
    if len(h_text) != m or any(ch not in "01" for ch in h_text):
        raise InvalidLabelError(
            f"hypercube part {h_text!r} is not an {m}-bit binary word"
        )
    h = int(h_text, 2) if m > 0 else 0
    try:
        b = CayleyButterfly(n).node_from_string(b_text)
    except InvalidParameterError as exc:
        raise InvalidLabelError(str(exc)) from exc
    return (h, b)
