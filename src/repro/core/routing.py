"""Optimal point-to-point routing in ``HB(m, n)`` (paper Section 3).

The paper's algorithm is the concatenation

1. route ``(h, b) → (h', b)`` with the shortest hypercube scheme inside the
   copy ``(H_m, b)``;
2. route ``(h', b) → (h', b')`` with the shortest butterfly scheme inside
   the copy ``(h', B_n)``;

and Remark 8 states the resulting length — Hamming distance plus butterfly
distance — is the exact graph distance.  :class:`HBRouter` implements this
(with either factor-segment order, and either butterfly backend), records
the generator name of every hop, and can assert optimality against the
exact distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro._bits import set_bits
from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import RoutingError
from repro.routing.butterfly import butterfly_distance, butterfly_route_walk
from repro.routing.hypercube import hypercube_route

__all__ = ["RouteResult", "HBRouter"]


@dataclass(frozen=True)
class RouteResult:
    """A computed route: node sequence plus per-hop generator names."""

    path: list[HBNode]
    generators: list[str] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.path) - 1

    @property
    def source(self) -> HBNode:
        return self.path[0]

    @property
    def target(self) -> HBNode:
        return self.path[-1]


class HBRouter:
    """Shortest point-to-point router for a fixed ``HB(m, n)`` instance.

    ``butterfly_backend`` selects how the butterfly segment is computed:

    * ``"walk"`` (default) — the ``O(n)``-ish combinatorial covering-walk
      router; no precomputation, works at any scale.
    * ``"oracle"`` — the identity-rooted BFS oracle; ``O(n·2^n)`` one-time
      cost, then ``O(1)`` distance lookups.  Used for cross-validation and
      benchmarking the trade-off (DESIGN.md Section 5).
    """

    def __init__(
        self,
        hb: HyperButterfly,
        *,
        butterfly_backend: Literal["walk", "oracle"] = "walk",
    ) -> None:
        if butterfly_backend not in ("walk", "oracle"):
            raise RoutingError(f"unknown butterfly backend {butterfly_backend!r}")
        self.hb = hb
        self.butterfly_backend = butterfly_backend

    # Distances ----------------------------------------------------------

    def distance(self, u: HBNode, v: HBNode) -> int:
        """Exact distance (Remark 8: sum of the two part distances)."""
        self.hb.validate_node(u)
        self.hb.validate_node(v)
        cube = (u[0] ^ v[0]).bit_count()
        if self.butterfly_backend == "oracle":
            fly = self.hb.butterfly.distance(u[1], v[1])
        else:
            fly = butterfly_distance(self.hb.n, u[1], v[1])
        return cube + fly

    # Routing --------------------------------------------------------------

    def route(
        self, u: HBNode, v: HBNode, *, order: Literal["cube-first", "fly-first"] = "cube-first"
    ) -> RouteResult:
        """Shortest route ``u → v`` (paper Section 3 concatenation).

        ``order`` picks which part is corrected first; both are optimal
        because part distances are independent (Remark 8).
        """
        self.hb.validate_node(u)
        self.hb.validate_node(v)
        h1, b1 = u
        h2, b2 = v

        def cube_segment(b_fixed: tuple[int, int]) -> list[HBNode]:
            words = hypercube_route(self.hb.m, h1, h2)
            return [(w, b_fixed) for w in words]

        def fly_segment(h_fixed: int) -> list[HBNode]:
            if self.butterfly_backend == "oracle":
                fly_path = self.hb.butterfly.shortest_path(b1, b2)
            else:
                fly_path = butterfly_route_walk(self.hb.n, b1, b2)
            return [(h_fixed, b) for b in fly_path]

        if order == "cube-first":
            first, second = cube_segment(b1), fly_segment(h2)
        elif order == "fly-first":
            first, second = fly_segment(h1), cube_segment(b2)
        else:
            raise RoutingError(f"unknown segment order {order!r}")

        path = first + second[1:]
        generators = self._generator_names(path)
        return RouteResult(path=path, generators=generators)

    def _generator_names(self, path: list[HBNode]) -> list[str]:
        """Name each hop after the generator it applies (Remark 3 set Σ)."""
        names = []
        for a, b in zip(path, path[1:], strict=False):
            if a[1] == b[1]:
                diff = set_bits(a[0] ^ b[0])
                if len(diff) != 1:
                    raise RoutingError(f"invalid hypercube hop {a!r} -> {b!r}")
                names.append(f"h_{diff[0]}")
            elif a[0] == b[0]:
                delta = self.hb.fly_group.quotient(a[1], b[1])
                for s, s_name in zip(
                    self.hb.fly_group.butterfly_generators(),
                    ("g", "f", "g^-1", "f^-1"),
                    strict=True,
                ):
                    if delta == s:
                        names.append(s_name)
                        break
                else:
                    raise RoutingError(f"invalid butterfly hop {a!r} -> {b!r}")
            else:
                raise RoutingError(
                    f"hop {a!r} -> {b!r} changes both parts (not an HB edge)"
                )
        return names
