"""The hyper-butterfly graph ``HB(m, n)`` (paper Definition 3, Theorems 1–2).

``HB(m, n)`` is the Cartesian product of the hypercube ``H_m`` and the
wrapped butterfly ``B_n``, realised directly as the Cayley graph of
``(Z_2)^m × (Z_n ⋉ (Z_2)^n)`` over the ``m + 4`` generators

``Σ = {h_0, …, h_{m-1}, g, f, g^{-1}, f^{-1}}``

(the set is closed under inverse; Remark 3).  A node is a two-part label
``(h, b)`` — ``h`` the hypercube-part, ``b = (PI, CI)`` the butterfly-part.

Facts implemented/surfaced here:

* Theorem 2: ``n·2^{m+n}`` vertices, ``(m+4)·n·2^{m+n-1}`` edges, regular of
  degree ``m + 4``.
* Definition 4 / Remark 4: the ``m`` *hypercube edges* change only the
  hypercube-part; the 4 *butterfly edges* change only the butterfly-part.
* Remark 5: decomposition into ``n·2^n`` disjoint hypercube copies
  ``(H_m, b)`` and ``2^m`` disjoint butterfly copies ``(h, B_n)``.
* Theorem 3: diameter ``m + ⌊3n/2⌋`` (exact value computable via the
  identity-rooted oracle; see the docstring of :meth:`diameter_formula`
  for the floor/ceil discussion).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.cayley.graph import CayleyGraph, DistanceOracle
from repro.cayley.group import (
    ButterflyGroup,
    DirectProductGroup,
    GeneratorSet,
    HypercubeGroup,
)
from repro.core.labels import format_hb_node
from repro.errors import InvalidLabelError, InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["HyperButterfly"]

HBNode = tuple[int, tuple[int, int]]


class HyperButterfly(Topology):
    """The hyper-butterfly ``HB(m, n)`` with labels ``(h, (PI, CI))``."""

    def __init__(self, m: int, n: int) -> None:
        if m < 0:
            raise InvalidParameterError(f"hypercube order must be >= 0, got {m}")
        if n < 3:
            raise InvalidParameterError(
                f"butterfly order must be >= 3 (Remark 3), got {n}"
            )
        self.m = m
        self.n = n
        self.name = f"HB({m},{n})"

        self.cube_group = HypercubeGroup(m)
        self.fly_group = ButterflyGroup(n)
        self.group = DirectProductGroup(self.cube_group, self.fly_group)
        self.gens = self._build_generators()
        self.cayley = CayleyGraph(self.group, self.gens)

        # factor topologies, exposed for copy-level algorithms
        self.hypercube = Hypercube(m)
        self.butterfly = CayleyButterfly(n)

    def _build_generators(self) -> GeneratorSet:
        """The ``m + 4`` generators of Definition 3 (order: h_i then g,f,g⁻¹,f⁻¹)."""
        fly_id = self.fly_group.identity()
        generators: list[HBNode] = [
            (1 << i, fly_id) for i in range(self.m)
        ]
        names = [f"h_{i}" for i in range(self.m)]
        for gen, gen_name in zip(
            self.fly_group.butterfly_generators(),
            ("g", "f", "g^-1", "f^-1"),
            strict=True,
        ):
            generators.append((0, gen))
            names.append(gen_name)
        return GeneratorSet(
            group=self.group, generators=tuple(generators), names=tuple(names)
        )

    # Topology interface ----------------------------------------------------

    @property
    def is_vertex_transitive(self) -> bool:
        """``True`` — a Cayley graph by construction (Theorem 1)."""
        return True

    def factors(self) -> tuple[Topology, Topology]:
        """The Cartesian factors ``(H_m, B_n)`` (Theorem 1 / Remark 6).

        A node ``(h, b)`` of ``HB(m, n)`` is exactly a pair of factor
        nodes, so the decomposition engine can treat ``HB`` structurally
        like any :class:`~repro.topologies.product.CartesianProduct`.
        """
        return (self.hypercube, self.butterfly)

    @property
    def num_nodes(self) -> int:
        # Theorem 2(2): n * 2^(m+n)
        return self.n << (self.m + self.n)

    @property
    def num_edges(self) -> int:
        # Theorem 2(3): (m+4) * n * 2^(m+n-1)
        return (self.m + 4) * self.n << (self.m + self.n - 1)

    @property
    def degree_formula(self) -> int:
        """``m + 4`` — Theorem 2(1)."""
        return self.m + 4

    def nodes(self) -> Iterator[HBNode]:
        return self.group.elements()

    def has_node(self, v: Hashable) -> bool:
        return self.group.contains(v)

    def neighbors(self, v: HBNode) -> list[HBNode]:
        self.validate_node(v)
        return self.gens.neighbors(v)

    # Definition 4: edge/neighbor classification ------------------------------

    def hypercube_neighbors(self, v: HBNode) -> list[HBNode]:
        """The ``m`` neighbors across hypercube edges (Definition 4 ii)."""
        self.validate_node(v)
        h, b = v
        return [(h ^ (1 << i), b) for i in range(self.m)]

    def butterfly_neighbors(self, v: HBNode) -> list[HBNode]:
        """The 4 neighbors across butterfly edges (Definition 4 ii)."""
        self.validate_node(v)
        h, b = v
        return [
            (h, self.fly_group.multiply(b, s))
            for s in self.fly_group.butterfly_generators()
        ]

    def edge_kind(self, u: HBNode, v: HBNode) -> str:
        """``"hypercube"`` or ``"butterfly"`` for an existing edge (Remark 4)."""
        self.validate_node(u)
        self.validate_node(v)
        if u[1] == v[1] and (u[0] ^ v[0]).bit_count() == 1:
            return "hypercube"
        if u[0] == v[0] and v[1] in self.butterfly.neighbors(u[1]):
            return "butterfly"
        raise InvalidLabelError(f"{u!r} and {v!r} are not adjacent in {self.name}")

    # Remark 5: copy decompositions -------------------------------------------

    def hypercube_copy(self, b: tuple[int, int]) -> Iterator[HBNode]:
        """The hypercube copy ``(H_m, b)``: nodes sharing butterfly-part ``b``."""
        self.butterfly.validate_node(b)
        for h in range(1 << self.m):
            yield (h, b)

    def butterfly_copy(self, h: int) -> Iterator[HBNode]:
        """The butterfly copy ``(h, B_n)``: nodes sharing hypercube-part ``h``."""
        self.hypercube.validate_node(h)
        for b in self.fly_group.elements():
            yield (h, b)

    # Label helpers -----------------------------------------------------------

    def identity_node(self) -> HBNode:
        """The identity node ``(0…0 ; t_0 t_1 … t_{n-1})`` (Remark 7)."""
        return self.group.identity()

    def format_node(self, v: HBNode) -> str:
        self.validate_node(v)
        return format_hb_node(v, self.m, self.n)

    # Closed-form properties ----------------------------------------------

    def diameter_formula(self) -> int:
        """Diameter ``m + ⌊3n/2⌋``.

        Theorem 3 writes ``m + ⌈3n/2⌉`` while Remark 1 gives the butterfly
        diameter as ``⌊3n/2⌋``; the two differ only for odd ``n``.  Exact BFS
        computation (see ``tests/core/test_hyperbutterfly.py`` and
        EXPERIMENTS.md) confirms the *floor* reading: the diameter of
        ``B_n`` is ``⌊3n/2⌋`` and distances in ``HB`` are sums of part
        distances (Remark 8), so ``D(HB) = m + ⌊3n/2⌋``.
        """
        return self.m + (3 * self.n) // 2

    def fault_tolerance_formula(self) -> int:
        """Vertex connectivity ``m + 4`` (Corollary 1) = degree: maximal."""
        return self.m + 4

    # Exact services via the Cayley oracle ---------------------------------

    @property
    def oracle(self) -> DistanceOracle:
        return self.cayley.oracle

    def diameter(self) -> int:
        """Exact diameter = eccentricity of the identity (vertex transitivity)."""
        return self.cayley.diameter()

    def distance(self, u: HBNode, v: HBNode) -> int:
        """Exact distance — equals hypercube-part + butterfly-part distance
        (Remark 8); the oracle is used only as a cross-check in tests."""
        self.validate_node(u)
        self.validate_node(v)
        cube_dist = (u[0] ^ v[0]).bit_count()
        return cube_dist + self.butterfly.distance(u[1], v[1])


register_invariants(
    InvariantSpec(
        family="HyperButterfly",
        params=("m", "n"),
        build=HyperButterfly,
        small=((0, 3), (1, 3), (2, 3), (2, 4), (3, 4)),
        large=((8, 10), (5, 16)),
        degree="m + 4",
        paper="Theorem 2(1)",
    )
)
