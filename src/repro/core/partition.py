"""Partitionability and incremental scalability of ``HB(m, n)``.

The paper's title and introduction advertise the family as *scalable* and
*partitionable* (inherited from the hyper-deBruijn design goals of [1]).
This module makes both properties executable:

* **Partitionability** (Remark 5 generalised): fixing any subset of
  hypercube bits splits ``HB(m, n)`` into ``2^j`` vertex-disjoint induced
  copies of ``HB(m-j, n)``; fixing the butterfly part instead yields
  ``n·2^n`` copies of ``H_m``.  Both decompositions come with explicit
  node maps so a workload scheduler can allocate sub-machines.

* **Incremental scalability**: ``HB(m, n)`` is an induced subgraph of
  ``HB(m+1, n)`` (embed with hypercube bit ``m`` = 0), so a machine grows
  by doubling without relabelling; :func:`expansion_embedding` returns the
  witness embedding.
"""

from __future__ import annotations

from typing import Iterator

from repro._bits import set_bits
from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.embeddings.base import Embedding
from repro.errors import InvalidParameterError

__all__ = [
    "SubHBPartition",
    "partition_by_cube_bits",
    "partition_member",
    "expansion_embedding",
    "contraction_words",
]


class SubHBPartition:
    """One block of the cube-bit partition: an induced ``HB(m-j, n)`` copy.

    ``fixed_bits`` maps bit positions to their frozen values; the block
    contains exactly the nodes whose hypercube part agrees with them.
    ``project``/``lift`` translate between block-local labels (a node of
    the quotient ``HB(m-j, n)``) and host labels.
    """

    def __init__(self, host: HyperButterfly, fixed_bits: dict[int, int]) -> None:
        for pos, val in fixed_bits.items():
            if not 0 <= pos < host.m:
                raise InvalidParameterError(f"bit {pos} outside H_{host.m}")
            if val not in (0, 1):
                raise InvalidParameterError(f"bit value must be 0/1, got {val}")
        self.host = host
        self.fixed_bits = dict(sorted(fixed_bits.items()))
        self.free_positions = [
            i for i in range(host.m) if i not in self.fixed_bits
        ]
        self.sub = HyperButterfly(len(self.free_positions), host.n)

    @property
    def fixed_word(self) -> int:
        word = 0
        for pos, val in self.fixed_bits.items():
            word |= val << pos
        return word

    def contains(self, node: HBNode) -> bool:
        h = node[0]
        return all((h >> pos) & 1 == val for pos, val in self.fixed_bits.items())

    def lift(self, sub_node: HBNode) -> HBNode:
        """Block-local ``HB(m-j, n)`` label → host label."""
        self.sub.validate_node(sub_node)
        h_small, b = sub_node
        h = self.fixed_word
        for local, pos in enumerate(self.free_positions):
            h |= ((h_small >> local) & 1) << pos
        return (h, b)

    def project(self, node: HBNode) -> HBNode:
        """Host label → block-local label (node must lie in this block)."""
        self.host.validate_node(node)
        if not self.contains(node):
            raise InvalidParameterError(f"{node!r} is not in this partition block")
        h, b = node
        h_small = 0
        for local, pos in enumerate(self.free_positions):
            h_small |= ((h >> pos) & 1) << local
        return (h_small, b)

    def nodes(self) -> Iterator[HBNode]:
        for sub_node in self.sub.nodes():
            yield self.lift(sub_node)

    def as_embedding(self) -> Embedding:
        """The block as a verified subgraph embedding ``HB(m-j,n) → host``."""
        mapping = {v: self.lift(v) for v in self.sub.nodes()}
        return Embedding(guest=self.sub, host=self.host, mapping=mapping)

    def __repr__(self) -> str:
        bits = ", ".join(f"x_{p}={v}" for p, v in self.fixed_bits.items())
        return f"<SubHBPartition {self.sub.name} of {self.host.name} [{bits}]>"


def partition_by_cube_bits(
    hb: HyperButterfly, positions: list[int]
) -> list[SubHBPartition]:
    """Split ``HB(m, n)`` into ``2^j`` disjoint ``HB(m-j, n)`` blocks.

    ``positions`` are the hypercube bit positions to freeze (distinct).
    The blocks partition the node set; each is an induced copy (verified
    in tests via :meth:`SubHBPartition.as_embedding`).
    """
    if len(set(positions)) != len(positions):
        raise InvalidParameterError("positions must be distinct")
    if len(positions) > hb.m:
        raise InvalidParameterError(
            f"cannot freeze {len(positions)} of {hb.m} hypercube bits"
        )
    blocks = []
    for assignment in range(1 << len(positions)):
        fixed = {
            pos: (assignment >> i) & 1 for i, pos in enumerate(positions)
        }
        blocks.append(SubHBPartition(hb, fixed))
    return blocks


def partition_member(
    blocks: list[SubHBPartition], node: HBNode
) -> SubHBPartition:
    """The unique block containing ``node``."""
    for block in blocks:
        if block.contains(node):
            return block
    raise InvalidParameterError(f"{node!r} belongs to no block (invalid partition)")


def expansion_embedding(hb: HyperButterfly) -> Embedding:
    """``HB(m, n)`` as an induced subgraph of ``HB(m+1, n)``.

    The incremental-scalability witness: nodes map to themselves with the
    new top hypercube bit 0, so an installed machine keeps every label
    when it doubles.
    """
    bigger = HyperButterfly(hb.m + 1, hb.n)
    mapping = {v: v for v in hb.nodes()}
    return Embedding(guest=hb, host=bigger, mapping=mapping)


def contraction_words(hb: HyperButterfly, node: HBNode) -> tuple[int, int]:
    """Coordinates of ``node`` under the double decomposition of Remark 5.

    Returns ``(butterfly copy index, hypercube copy index)`` where the
    butterfly copy index is the hypercube part (one ``B_n`` copy per cube
    word) and the hypercube copy index enumerates the butterfly part
    (one ``H_m`` copy per butterfly node) — the bookkeeping a partitioned
    scheduler needs.
    """
    hb.validate_node(node)
    h, (x, c) = node
    return (h, x * (1 << hb.n) + c)
