"""Fault-tolerant routing in ``HB(m, n)`` (paper Remark 10).

The constructive proof of Theorem 5 "readily suggests an optimal routing
scheme in the presence of the maximal number of allowable faults": with
fewer than ``m + 4`` faulty nodes, at least one of the ``m + 4`` internally
disjoint paths is fault free.  :class:`FaultTolerantRouter` implements that
scheme (strategy ``"disjoint"``) alongside an adaptive BFS detour router
(strategy ``"adaptive"``) that finds the *shortest* fault-avoiding path —
the pair quantifies the price of the paper's oblivious scheme (bench E6).
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.core.disjoint_paths import disjoint_paths
from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import DisconnectedError, RoutingError

__all__ = ["FaultTolerantRouter"]


class FaultTolerantRouter:
    """Routes around node faults using Theorem 5's disjoint-path family."""

    def __init__(self, hb: HyperButterfly) -> None:
        self.hb = hb

    def _check_endpoints(self, u: HBNode, v: HBNode, faults: frozenset) -> None:
        self.hb.validate_node(u)
        self.hb.validate_node(v)
        if u in faults or v in faults:
            raise RoutingError("an endpoint is itself faulty")

    def max_tolerated_faults(self) -> int:
        """``m + 3`` — one less than the connectivity (Corollary 1)."""
        return self.hb.m + 3

    def route(
        self,
        u: HBNode,
        v: HBNode,
        faults: Iterable[HBNode],
        *,
        strategy: Literal["disjoint", "adaptive"] = "disjoint",
    ) -> list[HBNode]:
        """A fault-free simple path ``u → v``.

        * ``"disjoint"`` — the paper's scheme: generate the ``m + 4``
          disjoint paths and return the first fault-free one.  Guaranteed to
          succeed whenever ``len(faults) <= m + 3`` (each fault can kill at
          most one path of an internally disjoint family).
        * ``"adaptive"`` — BFS on the faulted graph: shortest possible
          fault-avoiding route; succeeds whenever the faulted graph still
          connects ``u`` to ``v``.
        """
        if strategy not in ("disjoint", "adaptive"):
            # fail fast: a typo'd strategy must never silently fall through
            # to disjoint behaviour (or worse, only error after the adaptive
            # branch happened to be skipped)
            raise RoutingError(f"unknown strategy {strategy!r}")
        fault_set = frozenset(faults)
        self._check_endpoints(u, v, fault_set)
        if u == v:
            return [u]
        if strategy == "adaptive":
            path = self.hb.bfs_shortest_path(u, v, blocked=fault_set)
            if path is None:
                raise DisconnectedError(
                    f"faults disconnect {u!r} from {v!r} in {self.hb.name}"
                )
            return path

        candidates = disjoint_paths(self.hb, u, v)
        best: list[HBNode] | None = None
        for path in candidates:
            if fault_set.isdisjoint(path):
                if best is None or len(path) < len(best):
                    best = path
        if best is not None:
            return best
        # more faults than the family tolerates: the scheme's guarantee is
        # void, but the network may still be connected — report which.
        if len(fault_set) <= self.max_tolerated_faults():
            raise RoutingError(
                "internal error: a disjoint family with <= m+3 faults "
                "must contain a fault-free path"
            )
        raise DisconnectedError(
            f"{len(fault_set)} faults exceed the guaranteed tolerance "
            f"{self.max_tolerated_faults()} and kill every disjoint path; "
            "use strategy='adaptive' to probe residual connectivity"
        )

    def survives(self, u: HBNode, v: HBNode, faults: Iterable[HBNode]) -> bool:
        """Whether ``u`` and ``v`` remain connected under ``faults``."""
        fault_set = frozenset(faults)
        self._check_endpoints(u, v, fault_set)
        if u == v:
            return True
        return self.hb.bfs_shortest_path(u, v, blocked=fault_set) is not None
