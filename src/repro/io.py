"""JSON serialisation for artefacts produced by this library.

Research workflows want routes, disjoint-path families and embeddings as
files — to diff runs, feed plotters, or hand to a layout tool.  Node
labels of every topology here are nested tuples of ints, which JSON
round-trips as nested lists; these helpers re-canonicalise on load and
validate against a topology when one is supplied.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.embeddings.base import Embedding
from repro.errors import InvalidLabelError
from repro.topologies.base import Topology

__all__ = [
    "node_to_jsonable",
    "node_from_jsonable",
    "dump_paths",
    "load_paths",
    "dump_embedding",
    "load_embedding_mapping",
]


def node_to_jsonable(node: Any) -> Any:
    """Tuples → lists, recursively (ints pass through)."""
    if isinstance(node, tuple):
        return [node_to_jsonable(x) for x in node]
    if isinstance(node, (int, str)):
        return node
    raise InvalidLabelError(f"cannot serialise node component {node!r}")


def node_from_jsonable(data: Any) -> Any:
    """Lists → tuples, recursively — the inverse of :func:`node_to_jsonable`."""
    if isinstance(data, list):
        return tuple(node_from_jsonable(x) for x in data)
    if isinstance(data, (int, str)):
        return data
    raise InvalidLabelError(f"cannot deserialise node component {data!r}")


def dump_paths(
    paths: list[list[Any]],
    path: str | Path,
    *,
    meta: dict | None = None,
) -> None:
    """Write a list of node paths (e.g. a Theorem 5 family) to JSON."""
    payload = {
        "meta": meta or {},
        "paths": [[node_to_jsonable(v) for v in p] for p in paths],
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_paths(
    path: str | Path, *, topology: Topology | None = None
) -> tuple[list[list[Any]], dict]:
    """Read paths back; validates each node when ``topology`` is given."""
    payload = json.loads(Path(path).read_text())
    paths = [
        [node_from_jsonable(v) for v in p] for p in payload["paths"]
    ]
    if topology is not None:
        for p in paths:
            for v in p:
                topology.validate_node(v)
    return paths, payload.get("meta", {})


def dump_embedding(embedding: Embedding, path: str | Path) -> None:
    """Write an embedding's mapping (guest node → host node) to JSON."""
    payload = {
        "guest": embedding.guest.name,
        "host": embedding.host.name,
        "mapping": [
            [node_to_jsonable(g), node_to_jsonable(h)]
            for g, h in embedding.mapping.items()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_embedding_mapping(
    path: str | Path,
    *,
    guest: Topology | None = None,
    host: Topology | None = None,
) -> dict:
    """Read an embedding mapping back (optionally re-verified).

    When both ``guest`` and ``host`` are supplied the reconstructed
    embedding is fully re-verified before the mapping is returned.
    """
    payload = json.loads(Path(path).read_text())
    mapping = {
        node_from_jsonable(g): node_from_jsonable(h)
        for g, h in payload["mapping"]
    }
    if guest is not None and host is not None:
        Embedding(guest=guest, host=host, mapping=mapping).verify()
    return mapping
