"""Shared path types, validation and disjointness predicates.

A *path* is a list of node labels, inclusive of both endpoints; its length
is its edge count.  Theorem 5 of the paper is about families of
**node-disjoint** paths between a fixed pair ``(u, v)`` — paths that share
the endpoints and nothing else — which the literature calls *internally
disjoint*; both predicates are provided.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.errors import RoutingError
from repro.topologies.base import Topology

__all__ = [
    "Path",
    "validate_path",
    "path_length",
    "loop_erase",
    "paths_vertex_disjoint",
    "paths_internally_disjoint",
]


def loop_erase(path: Sequence[Hashable]) -> list[Hashable]:
    """Remove cycles from a walk, keeping endpoints; the result is simple.

    Whenever a vertex repeats, the intervening loop is cut.  Used to turn
    covering walks and flow decompositions into simple paths; cutting loops
    never lengthens a path, so a shortest walk stays shortest.
    """
    out: list[Hashable] = []
    index: dict[Hashable, int] = {}
    for v in path:
        if v in index:
            cut = index[v]
            for w in out[cut + 1 :]:
                del index[w]
            del out[cut + 1 :]
        else:
            index[v] = len(out)
            out.append(v)
    return out

Path = list  # list[Hashable]; alias for signature readability


def path_length(path: Sequence[Hashable]) -> int:
    """Edge count of a path."""
    return len(path) - 1


def validate_path(
    topology: Topology,
    path: Sequence[Hashable],
    *,
    source: Hashable | None = None,
    target: Hashable | None = None,
    simple: bool = True,
) -> None:
    """Raise :class:`RoutingError` unless ``path`` is a valid walk.

    Checks: non-empty, endpoints (when given), every consecutive pair is an
    edge of ``topology``, and (with ``simple=True``) no repeated vertex.
    """
    if not path:
        raise RoutingError("empty path")
    for v in path:
        topology.validate_node(v)
    if source is not None and path[0] != source:
        raise RoutingError(f"path starts at {path[0]!r}, expected {source!r}")
    if target is not None and path[-1] != target:
        raise RoutingError(f"path ends at {path[-1]!r}, expected {target!r}")
    for a, b in zip(path, path[1:], strict=False):
        if not topology.has_edge(a, b):
            raise RoutingError(f"{a!r} -> {b!r} is not an edge of {topology.name}")
    if simple and len(set(path)) != len(path):
        raise RoutingError("path revisits a vertex")


def paths_vertex_disjoint(paths: Sequence[Sequence[Hashable]]) -> bool:
    """True iff no vertex appears in two of the paths (endpoints included)."""
    seen: set[Hashable] = set()
    for path in paths:
        for v in path:
            if v in seen:
                return False
            seen.add(v)
    return True


def paths_internally_disjoint(paths: Sequence[Sequence[Hashable]]) -> bool:
    """True iff the paths share only their common endpoints.

    All paths must run between the same two endpoints; interior vertices
    must be pairwise distinct across paths (the Menger notion used in
    Theorem 5).
    """
    if not paths:
        return True
    source = paths[0][0]
    target = paths[0][-1]
    seen: set[Hashable] = set()
    for path in paths:
        if path[0] != source or path[-1] != target:
            return False
        interior = path[1:-1]
        for v in interior:
            if v in seen or v == source or v == target:
                return False
            seen.add(v)
    return True
