"""Exact shortest routing in the wrapped butterfly ``B_n``.

The paper routes the butterfly part "using the shortest routing scheme in
butterfly graphs [4]".  We implement that scheme as an exact combinatorial
algorithm, plus a BFS-oracle router used for cross-validation and as the
generic fallback.

Covering-walk formulation
-------------------------

Work in classic coordinates (``word = CI``, ``level = PI``; see Remark 2).
A route from ``(w, ℓ)`` to ``(w', ℓ')`` is a walk on the *level cycle*
``C_n`` whose step across position ``j`` (the cycle edge joining levels
``j`` and ``j+1``) may optionally flip word bit ``j``.  Hence the exact
distance is the length of a minimal walk on ``C_n`` from ``ℓ`` to ``ℓ'``
traversing every position in ``D = bits(w ⊕ w')`` at least once.

Lifting the walk to the line (universal cover) anchored at ``ℓ``, a minimal
covering walk visits a contiguous interval ``[lo, hi]`` and has at most one
direction reversal, giving the two candidate shapes

* up-first:   ``0 → hi → lo → e``  with cost ``hi + (hi - lo) + (e - lo)``
* down-first: ``0 → lo → hi → e``  with cost ``(-lo) + (hi - lo) + (hi - e)``

where ``e`` is a lift of ``ℓ' - ℓ``.  Minimising over ``lo``, the induced
minimal ``hi``, the lift ``e`` and the shape is exact; property tests check
it against the BFS oracle exhaustively for small ``n``.  The resulting walk
flips each required bit on its *final* crossing and is loop-erased into a
simple path, so returned routes are simple shortest paths.

This router is ``O(n·|D|)`` time and ``O(1)`` memory — the ablation
counterpart of the ``O(n·2^n)``-memory oracle (DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._bits import set_bits
from repro.errors import InvalidParameterError, RoutingError
from repro.routing.base import loop_erase
from repro.topologies.butterfly_cayley import CayleyButterfly

__all__ = [
    "covering_walk",
    "butterfly_distance",
    "butterfly_route_walk",
    "butterfly_route",
    "butterfly_disjoint_paths",
]


@dataclass(frozen=True)
class _WalkPlan:
    cost: int
    up_first: bool
    lo: int
    hi: int
    end: int


def _minimal_plan(n: int, start: int, end: int, required: frozenset[int]) -> _WalkPlan:
    """Minimal covering-walk plan on the level cycle ``C_n`` (lifted)."""
    base = (end - start) % n
    best: _WalkPlan | None = None
    # line offsets are relative to ``start``: offset t crosses cycle edge
    # (start + t) mod n, so required edge r lifts to offsets ≡ r - start
    req = sorted((r - start) % n for r in required)
    for lo in range(-2 * n, 1):
        # minimal hi that covers every required edge given this lo
        hi_needed = 0
        for r in req:
            # smallest lift (offset) of cycle edge r that is >= lo
            k, rem = divmod(lo - r, n)
            lift = r + (k + (1 if rem else 0)) * n
            hi_needed = max(hi_needed, lift + 1)
        for e in (base - 2 * n, base - n, base, base + n, base + 2 * n):
            if e < lo:
                continue
            hi = max(hi_needed, e, 0)
            up_cost = hi + (hi - lo) + (e - lo)
            down_cost = (-lo) + (hi - lo) + (hi - e)
            for up_first, cost in ((True, up_cost), (False, down_cost)):
                if best is None or cost < best.cost:
                    best = _WalkPlan(cost, up_first, lo, hi, e)
    assert best is not None
    return best


def covering_walk(
    n: int, start: int, end: int, required: frozenset[int] | set[int]
) -> list[int]:
    """A minimal walk on ``C_n`` from ``start`` to ``end`` (as *line* offsets).

    Returns the lifted coordinates (offsets relative to ``start``); level of
    offset ``p`` is ``(start + p) mod n``.  The walk crosses every cycle edge
    in ``required`` (edge ``j`` joins levels ``j`` and ``j+1 mod n``) at
    least once, and its length is exactly ``butterfly_distance``'s value.
    """
    if n < 3:
        raise InvalidParameterError(f"butterfly order must be >= 3, got {n}")
    for r in required:
        if not 0 <= r < n:
            raise InvalidParameterError(f"required edge {r} out of range [0, {n})")
    plan = _minimal_plan(n, start, end, frozenset(required))
    walk = [0]

    def extend(target: int) -> None:
        step = 1 if target >= walk[-1] else -1
        while walk[-1] != target:
            walk.append(walk[-1] + step)

    if plan.up_first:
        extend(plan.hi)
        extend(plan.lo)
    else:
        extend(plan.lo)
        extend(plan.hi)
    extend(plan.end)
    return walk


def butterfly_distance(n: int, u: tuple[int, int], v: tuple[int, int]) -> int:
    """Exact distance between butterfly nodes in ``(PI, CI)`` coordinates."""
    x1, c1 = u
    x2, c2 = v
    required = frozenset(set_bits(c1 ^ c2))
    return _minimal_plan(n, x1, x2, required).cost


def butterfly_route_walk(
    n: int, u: tuple[int, int], v: tuple[int, int]
) -> list[tuple[int, int]]:
    """Shortest simple path ``u → v`` in ``B_n`` via the covering walk.

    Coordinates are ``(PI, CI)``.  Each required bit is flipped on the walk's
    final crossing of its position; the walk is then loop-erased (removing a
    loop never removes a flip — a loop has zero net word change and every
    required bit is flipped exactly once).
    """
    x1, c1 = u
    x2, c2 = v
    need = set(set_bits(c1 ^ c2))
    offsets = covering_walk(n, x1, x2, need)

    # positions crossed, in walk order
    crossings: list[int] = []
    for p, q in zip(offsets, offsets[1:], strict=False):
        pos = (x1 + min(p, q)) % n
        crossings.append(pos)
    last_crossing: dict[int, int] = {}
    for i, pos in enumerate(crossings):
        if pos in need:
            last_crossing[pos] = i

    path = [u]
    for i, (p, q) in enumerate(zip(offsets, offsets[1:], strict=False)):
        x, c = path[-1]
        pos = (x1 + min(p, q)) % n
        do_flip = last_crossing.get(pos) == i
        new_c = c ^ (1 << pos) if do_flip else c
        new_x = (x1 + q) % n
        path.append((new_x, new_c))
    if path[-1] != v:
        raise RoutingError(
            f"covering-walk route ended at {path[-1]!r}, expected {v!r} (internal bug)"
        )
    return loop_erase(path)


def butterfly_route(
    butterfly: CayleyButterfly, u: tuple[int, int], v: tuple[int, int]
) -> list[tuple[int, int]]:
    """Shortest path via the combinatorial router, endpoint-validated."""
    butterfly.validate_node(u)
    butterfly.validate_node(v)
    return butterfly_route_walk(butterfly.n, u, v)


def butterfly_disjoint_paths(
    butterfly: CayleyButterfly, u: tuple[int, int], v: tuple[int, int]
) -> list[list[tuple[int, int]]]:
    """4 internally disjoint ``u → v`` paths in ``B_n`` (Menger/max-flow).

    The paper invokes the 4-path family of [4] as a black box inside
    Theorem 5; we extract an equivalent family with a max-flow computation
    on the explicit butterfly, which is exact (vertex connectivity 4 per
    Remark 1 guarantees the family exists for every ``u != v``).
    """
    import networkx as nx

    butterfly.validate_node(u)
    butterfly.validate_node(v)
    if u == v:
        raise RoutingError("disjoint paths require distinct endpoints")
    graph = butterfly.to_networkx()
    paths = list(nx.node_disjoint_paths(graph, u, v))
    if len(paths) < 4:
        raise RoutingError(
            f"expected 4 disjoint paths in {butterfly.name}, found {len(paths)}"
        )
    return paths[:4]
