"""Compact next-hop routing tables for ``HB(m, n)`` switches.

A VLSI router does not run an algorithm per packet; it indexes a table.
Vertex transitivity makes the table *node-independent*: a single map from
the translation ``δ = u⁻¹·v`` to the first generator of a shortest path
serves every source, so one shared ROM of ``n·2^{m+n}`` entries routes the
whole machine (instead of an ``N × N`` table).  This module builds that
table, measures it, and exposes a table-driven router whose outputs are
provably optimal (they inherit the BFS oracle's tree).

For switches that cannot afford the full ROM, the *split* table factors
through Remark 8: the butterfly factor's ``n·2^n``-entry table plus
on-the-fly e-cube routing for the hypercube part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro._bits import set_bits
from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import RoutingError

__all__ = ["RoutingTable", "build_full_table", "build_split_table"]


@dataclass(frozen=True)
class RoutingTable:
    """A shared next-generator table plus its size accounting."""

    hb: HyperButterfly
    kind: str  # "full" | "split"
    entries: dict  # delta -> generator index (full) or fly-delta -> index
    identity_entries: int

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def next_hop(self, source: HBNode, target: HBNode) -> HBNode | None:
        """The table-driven next hop (``None`` when already delivered)."""
        hb = self.hb
        hb.validate_node(source)
        hb.validate_node(target)
        if source == target:
            return None
        if self.kind == "full":
            delta = hb.group.quotient(source, target)
            gen_index = self.entries[delta]
            return hb.gens.apply(source, gen_index)
        # split: e-cube the hypercube part first, then the butterfly table
        h1, b1 = source
        h2, b2 = target
        if h1 != h2:
            lowest = set_bits(h1 ^ h2)[0]
            return (h1 ^ (1 << lowest), b1)
        fly_delta = hb.fly_group.quotient(b1, b2)
        gen_index = self.entries[fly_delta]
        # butterfly generators sit after the m hypercube generators
        return hb.gens.apply(source, hb.m + gen_index)

    def route(self, source: HBNode, target: HBNode) -> list[HBNode]:
        """Follow the table to the target; provably shortest for ``full``
        and Remark 8-optimal for ``split``."""
        path = [source]
        guard = self.hb.diameter_formula() + 1
        while path[-1] != target:
            if len(path) > guard:
                raise RoutingError("table routing exceeded the diameter bound")
            step = self.next_hop(path[-1], target)
            if step is None:
                break
            path.append(step)
        return path


def build_full_table(hb: HyperButterfly) -> RoutingTable:
    """The node-independent full table: one entry per translation ``δ``.

    Entry for ``δ`` = the generator index of the *first* hop of a shortest
    path from the identity to ``δ`` (extracted from the oracle's BFS tree,
    so following entries greedily is optimal by construction).
    """
    oracle = hb.oracle
    entries: dict = {}
    identity = hb.identity_node()
    for delta in hb.nodes():
        if delta == identity:
            continue
        word = oracle.generator_word(delta)
        entries[delta] = word[0]
    return RoutingTable(hb=hb, kind="full", entries=entries, identity_entries=1)


def build_split_table(hb: HyperButterfly) -> RoutingTable:
    """The factored table: butterfly entries only (``n·2^n - 1`` of them),
    hypercube part routed by stateless e-cube — a ``2^m``-fold ROM saving
    with identical path lengths (Remark 8)."""
    fly_oracle = hb.butterfly.oracle
    entries: dict = {}
    fly_identity = hb.fly_group.identity()
    for fly_delta in hb.fly_group.elements():
        if fly_delta == fly_identity:
            continue
        word = fly_oracle.generator_word(fly_delta)
        entries[fly_delta] = word[0]
    return RoutingTable(hb=hb, kind="split", entries=entries, identity_entries=1)
