"""Routing algorithms for the factor networks and shared path utilities.

* :mod:`repro.routing.base` — path validation and metrics.
* :mod:`repro.routing.hypercube` — e-cube shortest routing and the classic
  ``m`` vertex-disjoint paths construction for ``H_m`` [5].
* :mod:`repro.routing.butterfly` — two exact routers for the wrapped
  butterfly: an ``O(n^2)`` combinatorial *covering-walk* router and the
  BFS-oracle router, plus 4 vertex-disjoint paths (Menger/max-flow).

The hyper-butterfly-level routing that composes these lives in
:mod:`repro.core.routing` / :mod:`repro.core.disjoint_paths`.
"""

from repro.routing.base import (
    Path,
    validate_path,
    path_length,
    paths_vertex_disjoint,
    paths_internally_disjoint,
)
from repro.routing.hypercube import (
    hypercube_route,
    hypercube_distance,
    hypercube_disjoint_paths,
)
from repro.routing.tables import (
    RoutingTable,
    build_full_table,
    build_split_table,
)
from repro.routing.butterfly import (
    butterfly_distance,
    butterfly_route,
    butterfly_route_walk,
    butterfly_disjoint_paths,
    covering_walk,
)

__all__ = [
    "Path",
    "validate_path",
    "path_length",
    "paths_vertex_disjoint",
    "paths_internally_disjoint",
    "hypercube_route",
    "hypercube_distance",
    "hypercube_disjoint_paths",
    "butterfly_distance",
    "butterfly_route",
    "butterfly_route_walk",
    "butterfly_disjoint_paths",
    "covering_walk",
    "RoutingTable",
    "build_full_table",
    "build_split_table",
]
