"""Menger-style disjoint-path extraction via max-flow (node-splitting).

Used as the exact substrate for the "4 disjoint paths in ``B_n`` [4]" and
node-to-set families that Theorem 5's construction consumes as black boxes,
and as the last-resort fallback for the full ``m + 4`` family.

The construction is the textbook node-splitting reduction: every vertex
``v`` becomes an arc ``v_in → v_out`` of capacity 1 (endpoints get capacity
``k``), every undirected edge ``{u, v}`` becomes ``u_out → v_in`` and
``v_out → u_in``.  Integral max-flow then decomposes into vertex-disjoint
paths.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.errors import RoutingError
from repro.routing.base import loop_erase

__all__ = [
    "vertex_disjoint_paths",
    "node_to_set_disjoint_paths",
]

_IN = 0
_OUT = 1


def _split_digraph(
    graph: nx.Graph,
    *,
    unlimited: set,
    blocked: set,
) -> nx.DiGraph:
    dg = nx.DiGraph()
    for v in graph.nodes():
        if v in blocked:
            continue
        cap = graph.number_of_nodes() if v in unlimited else 1
        dg.add_edge((v, _IN), (v, _OUT), capacity=cap)
    for a, b in graph.edges():
        if a in blocked or b in blocked:
            continue
        dg.add_edge((a, _OUT), (b, _IN), capacity=1)
        dg.add_edge((b, _OUT), (a, _IN), capacity=1)
    return dg


_SUPER = "__super_source__"


def _decompose_paths(
    flow: dict, source_out: tuple, target_in: tuple
) -> list[list[Hashable]]:
    """Walk unit flow from ``source_out`` greedily, yielding node paths.

    Each walk collects the underlying graph node of every split vertex it
    passes (deduplicating the ``v_in → v_out`` pair) and is loop-erased at
    the end: preflow-push max-flow may leave flow cycles, which the walk
    consumes harmlessly.
    """
    residual = {
        u: {v: f for v, f in nbrs.items() if f > 0} for u, nbrs in flow.items()
    }

    def take_step(cur: tuple) -> tuple | None:
        nbrs = residual.get(cur, {})
        nxt = next((v for v, f in nbrs.items() if f > 0), None)
        if nxt is not None:
            nbrs[nxt] -= 1
        return nxt

    paths = []
    while True:
        cur = take_step(source_out)
        if cur is None:
            break
        node_path: list[Hashable] = []
        if source_out[0] != _SUPER:
            node_path.append(source_out[0])
        while True:
            node = cur[0]
            if node != _SUPER and (not node_path or node_path[-1] != node):
                node_path.append(node)
            if cur == target_in:
                break
            cur = take_step(cur)
            if cur is None:
                raise RoutingError("flow decomposition failed (internal bug)")
        paths.append(loop_erase(node_path))
    return paths


def vertex_disjoint_paths(
    graph: nx.Graph,
    source: Hashable,
    target: Hashable,
    *,
    k: int | None = None,
    blocked: Iterable[Hashable] = (),
    cutoff: int | None = None,
) -> list[list[Hashable]]:
    """A maximum family of internally disjoint ``source → target`` paths.

    ``k`` truncates the family (and raises :class:`RoutingError` when the
    graph cannot supply ``k`` paths).  ``blocked`` vertices are removed
    first (endpoints may not be blocked).  ``cutoff`` stops augmenting once
    that many paths are found — disjoint-path families are bounded by the
    minimum degree, so a cutoff makes large-instance witnesses cheap
    (defaults to ``k``, or to ``min(deg(source), deg(target))`` otherwise,
    both of which are exact bounds rather than approximations).
    """
    blocked = set(blocked)
    if source in blocked or target in blocked:
        raise RoutingError("endpoints may not be blocked")
    if source == target:
        raise RoutingError("disjoint paths require distinct endpoints")
    dg = _split_digraph(graph, unlimited={source, target}, blocked=blocked)
    s, t = (source, _OUT), (target, _IN)
    if s not in dg or t not in dg:
        raise RoutingError("endpoint missing from graph")
    # no path may pass *through* an endpoint: sever their transit halves
    dg.remove_node((source, _IN))
    dg.remove_node((target, _OUT))
    if cutoff is None:
        cutoff = k if k is not None else min(
            graph.degree(source), graph.degree(target)
        )
    value, flow = nx.maximum_flow(
        dg, s, t, flow_func=nx.algorithms.flow.edmonds_karp, cutoff=cutoff
    )
    paths = _decompose_paths(flow, s, t)
    if k is not None:
        if len(paths) < k:
            raise RoutingError(
                f"requested {k} disjoint paths, graph supports only {len(paths)}"
            )
        paths = paths[:k]
    return paths


def node_to_set_disjoint_paths(
    graph: nx.Graph,
    sources: Sequence[Hashable],
    target: Hashable,
    *,
    blocked: Iterable[Hashable] = (),
) -> list[list[Hashable]]:
    """One path per source to ``target``, pairwise sharing only ``target``.

    This is the node-to-set disjoint path problem (cf. Latifi, Ko &
    Srimani for hypercubes); Theorem 5's tails need exactly this.  A source
    equal to ``target`` gets the trivial path ``[target]``.  Sources must be
    distinct.  Raises :class:`RoutingError` if no such family exists under
    ``blocked``.
    """
    if len(set(sources)) != len(sources):
        raise RoutingError("sources must be distinct")
    blocked = set(blocked)
    if target in blocked or any(s in blocked for s in sources):
        raise RoutingError("endpoints may not be blocked")
    real_sources = [s for s in sources if s != target]
    result_by_source: dict[Hashable, list[Hashable]] = {
        s: [target] for s in sources if s == target
    }
    if real_sources:
        dg = _split_digraph(graph, unlimited={target}, blocked=blocked)
        super_source = (_SUPER, _OUT)
        for s in real_sources:
            # feed each source at its _OUT side and sever its _IN side so
            # no other path can pass through a source vertex
            dg.add_edge(super_source, (s, _OUT), capacity=1)
            dg.remove_node((s, _IN))
        t = (target, _IN)
        if (target, _OUT) in dg:
            dg.remove_node((target, _OUT))
        value, flow = nx.maximum_flow(
            dg,
            super_source,
            t,
            flow_func=nx.algorithms.flow.edmonds_karp,
            cutoff=len(real_sources),
        )
        if value < len(real_sources):
            raise RoutingError(
                f"only {value} of {len(real_sources)} node-to-set paths exist"
            )
        raw = _decompose_paths(flow, super_source, t)
        for path in raw:
            result_by_source[path[0]] = path
    missing = [s for s in sources if s not in result_by_source]
    if missing:
        raise RoutingError(f"flow produced no path for sources {missing!r}")
    return [result_by_source[s] for s in sources]
