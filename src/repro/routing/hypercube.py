"""Shortest routing and disjoint paths in the hypercube ``H_m`` [5].

*Routing* is dimension-order ("e-cube"): correct the differing bits one at
a time; any correction order yields a shortest path of length equal to the
Hamming distance.

*Disjoint paths* (used by Theorem 5 case 1): between ``u`` and ``v`` at
Hamming distance ``d`` with differing dimensions ``D = {d_0 < … < d_{k-1}}``
the classic construction of Saad & Schultz gives ``m`` internally disjoint
paths:

* for each rotation ``j``, correct ``D`` in the cyclic order
  ``d_j, d_{j+1}, …, d_{j-1}`` (length ``d`` — a shortest path);
* for each dimension ``s ∉ D``, detour ``u → u⊕e_s → (correct all of D) →
  v⊕e_s → v`` (length ``d + 2``).

Interior vertices of rotation ``j`` carry corrected sets that are cyclic
windows of ``D`` anchored at ``d_j`` — distinct across rotations — while
detour interiors are separated by their flipped side bit, so the family is
internally disjoint (verified exhaustively in tests).  Path lengths are at
most ``m + 2``, the bound quoted in the paper's Theorem 5 proof.
"""

from __future__ import annotations

from repro._bits import set_bits
from repro.errors import InvalidParameterError, RoutingError

__all__ = [
    "hypercube_distance",
    "hypercube_route",
    "hypercube_disjoint_paths",
]


def _check_word(m: int, w: int, what: str) -> None:
    if not isinstance(w, int) or not 0 <= w < (1 << m):
        raise InvalidParameterError(f"{what} {w!r} is not an {m}-bit word")


def hypercube_distance(u: int, v: int) -> int:
    """Graph distance in any ``H_m`` containing both words: Hamming distance."""
    return (u ^ v).bit_count()


def hypercube_route(m: int, u: int, v: int, *, order: list[int] | None = None) -> list[int]:
    """A shortest ``u → v`` path in ``H_m`` correcting bits in ``order``.

    ``order`` defaults to ascending differing-bit positions; a custom order
    must be a permutation of the differing positions.
    """
    _check_word(m, u, "source")
    _check_word(m, v, "target")
    diff = set_bits(u ^ v)
    if order is None:
        order = diff
    elif sorted(order) != diff:
        raise RoutingError(
            f"correction order {order} is not a permutation of differing bits {diff}"
        )
    path = [u]
    for i in order:
        path.append(path[-1] ^ (1 << i))
    return path


def hypercube_disjoint_paths(m: int, u: int, v: int) -> list[list[int]]:
    """``m`` internally disjoint ``u → v`` paths in ``H_m`` (``u != v``).

    The first ``d`` paths are shortest (length ``d``); the remaining
    ``m - d`` have length ``d + 2``.
    """
    _check_word(m, u, "source")
    _check_word(m, v, "target")
    if u == v:
        raise RoutingError("disjoint paths require distinct endpoints")
    diff = set_bits(u ^ v)
    d = len(diff)
    paths: list[list[int]] = []
    # rotated shortest paths
    for j in range(d):
        order = diff[j:] + diff[:j]
        paths.append(hypercube_route(m, u, v, order=order))
    # side-dimension detours
    for s in range(m):
        if s in diff:
            continue
        detour_u = u ^ (1 << s)
        middle = hypercube_route(m, detour_u, v ^ (1 << s), order=diff)
        paths.append([u] + middle + [v])
    return paths
