"""Developer tooling shipped with the library (not part of the runtime API).

Currently one subsystem lives here: :mod:`repro.devtools.reprolint`, the
project's paper-invariant lint engine (``hyperbutterfly lint``).
"""

from __future__ import annotations

__all__: list[str] = []
