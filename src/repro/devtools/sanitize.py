"""Dynamic determinism sanitizer: ``hyperbutterfly sanitize``.

Static taint (reprolint HB5xx) over-approximates — it cannot see through
dynamic dispatch, C extensions, or hash-order leaks that only manifest at
runtime.  This module closes the loop dynamically: it runs a JSON-emitting
target command **twice in subprocesses under different
``PYTHONHASHSEED`` values** and structurally diffs the two artefacts.  Any
divergence means some output is a function of Python's per-process hash
seed (set iteration order, dict fallback ordering, ``hash()`` leaking into
values) rather than of the experiment's declared seed — exactly the class
of bug that silently invalidates every benchmark comparison in
``BENCH_fastgraph.json`` / ``BENCH_faults.json``.

Default targets:

* the HB(2,3) faults campaign (``faults-campaign 2 3 --quick``), the
  artefact CI smokes;
* a fastgraph metrics dump on HB(2,3) (:func:`metrics_probe` run via
  ``python -c``), covering the analysis/fastgraph layers;
* the metrics CLI on HB(2,3) with ``--force-bfs --jobs 2``, covering the
  process-pool sweep path end to end (chunked reduction must not leak
  pool scheduling into the artefact).

A target writes its artefact to the path substituted for ``{out}`` in its
argv; a target with no ``{out}`` placeholder must print JSON on stdout.

``--mode overflow`` runs a different dynamic probe over the same targets:
each is run once clean and once with ``$REPRO_NUMPY_ERRSTATE`` exporting
``over=raise,invalid=raise`` — the CLI entry point, :func:`metrics_probe`,
and every pool-worker initializer install the trap via
:func:`repro.fastgraph.guard.install_errstate_from_env`, so numpy
overflow/invalid warnings that are silently swallowed in stock runs
become hard failures (and the trapped artefact must still be bit-identical
to the clean one).  Array *integer* wraparound stays silent by numpy
design — that class is covered statically by reprolint HB605.

Exit codes mirror ``lint``: ``0`` reproducible, ``1`` divergent (first
divergent JSON path reported) or overflow trapped, ``2`` the sanitizer
itself failed (target crashed outside the trap, output was not JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError

__all__ = [
    "SanitizeError",
    "SanitizeTarget",
    "default_targets",
    "structural_diff",
    "run_target",
    "sanitize",
    "sanitize_overflow",
    "metrics_probe",
    "configure_parser",
    "run",
]

#: hash seeds used when the caller does not override them — different on
#: purpose, so str/bytes hash order differs between the two runs
DEFAULT_HASH_SEEDS = ("0", "1")

#: the ``--mode overflow`` numpy error-state spec (see fastgraph.guard)
OVERFLOW_ERRSTATE = "over=raise,invalid=raise"

_PROBE_SNIPPET = (
    "from repro.devtools.sanitize import metrics_probe; "
    "metrics_probe({out!r}, 2, 3)"
)


class SanitizeError(ReproError):
    """The sanitizer could not run or parse a target."""


@dataclass(frozen=True)
class SanitizeTarget:
    """One JSON-emitting command to check for hash-seed independence."""

    name: str
    #: argv with an optional ``{out}`` placeholder for the artefact path
    argv: tuple[str, ...]

    @property
    def uses_stdout(self) -> bool:
        return not any("{out}" in a for a in self.argv)


def default_targets() -> list[SanitizeTarget]:
    """The stock targets: faults campaign, metrics dump, pooled metrics CLI
    on both the CSR and the implicit (CSR-free) BFS substrates."""
    py = sys.executable
    return [
        SanitizeTarget(
            name="faults-campaign-hb23",
            argv=(
                py, "-m", "repro", "faults-campaign", "2", "3",
                "--quick", "--trials", "1", "--pairs", "4",
                "--output", "{out}",
            ),
        ),
        SanitizeTarget(
            name="structure-campaign-hb23",
            argv=(
                py, "-m", "repro", "structure-campaign", "2", "3",
                "--quick", "--trials", "1", "--pairs", "4",
                "--output", "{out}",
            ),
        ),
        SanitizeTarget(
            name="traffic-campaign-hb23",
            argv=(
                py, "-m", "repro", "traffic-campaign", "2", "3",
                "--quick", "--flows-target", "200",
                "--output", "{out}",
            ),
        ),
        SanitizeTarget(
            name="fastgraph-metrics-hb23",
            argv=(py, "-c", _PROBE_SNIPPET.format(out="{out}")),
        ),
        SanitizeTarget(
            name="metrics-cli-hb23",
            argv=(
                py, "-m", "repro", "metrics", "hb", "2", "3",
                "--force-bfs", "--jobs", "2", "--output", "{out}",
            ),
        ),
        SanitizeTarget(
            name="metrics-cli-implicit-hb23",
            argv=(
                py, "-m", "repro", "metrics", "hb", "2", "3",
                "--backend", "implicit", "--force-bfs", "--jobs", "2",
                "--output", "{out}",
            ),
        ),
    ]


def metrics_probe(out_path: str, m: int, n: int) -> None:
    """Write a fastgraph/analysis metrics dump for ``HB(m, n)`` as JSON.

    Runs inside the sanitizer's subprocesses; everything in the payload
    must be a pure function of ``(m, n)``.
    """
    from repro.fastgraph.guard import install_errstate_from_env

    install_errstate_from_env()  # --mode overflow trap, no-op otherwise
    from repro.analysis.distance_stats import distance_profile
    from repro.analysis.metrics import average_distance, exact_diameter
    from repro.core.hyperbutterfly import HyperButterfly

    hb = HyperButterfly(m, n)
    profile = distance_profile(hb)
    payload = {
        "name": hb.name,
        "num_nodes": hb.num_nodes,
        "num_edges": hb.num_edges,
        "exact_diameter": exact_diameter(hb),
        "average_distance": average_distance(hb, seed=0),
        "distance_histogram": {
            str(d): c for d, c in sorted(profile.histogram.items())
        },
        "diameter_formula": hb.diameter_formula(),
    }
    Path(out_path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


# -- structural JSON diff ----------------------------------------------------


def structural_diff(a: object, b: object, path: str = "$") -> str | None:
    """First divergent JSON path between two parsed documents, or ``None``.

    Comparison is exact (floats included): the repo's claim is *bit*
    reproducibility of artefacts, not tolerance-level agreement.
    """
    if type(a) is not type(b) and not (
        isinstance(a, (int, float))
        and isinstance(b, (int, float))
        and not isinstance(a, bool)
        and not isinstance(b, bool)
    ):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        assert isinstance(b, dict)
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return f"{path}.{key}: missing on the left"
            if key not in b:
                return f"{path}.{key}: missing on the right"
            hit = structural_diff(a[key], b[key], f"{path}.{key}")
            if hit is not None:
                return hit
        return None
    if isinstance(a, list):
        assert isinstance(b, list)
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b, strict=True)):
            hit = structural_diff(x, y, f"{path}[{i}]")
            if hit is not None:
                return hit
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


# -- running targets ---------------------------------------------------------


def _subprocess_env(hash_seed: str) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    # make `repro` importable in the child even without an installed package
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
    return env


def run_target(
    target: SanitizeTarget,
    hash_seed: str,
    *,
    timeout: float = 600.0,
    extra_env: dict[str, str] | None = None,
) -> object:
    """Run ``target`` once under ``PYTHONHASHSEED=hash_seed``; parsed JSON.

    ``extra_env`` entries are layered on top (``--mode overflow`` uses it
    to export the numpy error-state trap).
    """
    with tempfile.TemporaryDirectory(prefix="sanitize-") as tmp:
        out_path = os.path.join(tmp, "artefact.json")
        argv = [a.replace("{out}", out_path) for a in target.argv]
        env = _subprocess_env(hash_seed)
        if extra_env:
            env.update(extra_env)
        try:
            proc = subprocess.run(
                argv,
                env=env,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise SanitizeError(
                f"target {target.name} failed to run: {exc}"
            ) from exc
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-5:]
            raise SanitizeError(
                f"target {target.name} exited {proc.returncode} under "
                f"PYTHONHASHSEED={hash_seed}: " + " | ".join(tail)
            )
        raw = (
            proc.stdout
            if target.uses_stdout
            else _read_artefact(target, out_path)
        )
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SanitizeError(
                f"target {target.name} produced invalid JSON: {exc}"
            ) from exc


def _read_artefact(target: SanitizeTarget, out_path: str) -> str:
    try:
        return Path(out_path).read_text()
    except OSError as exc:
        raise SanitizeError(
            f"target {target.name} wrote no artefact at its {{out}} path: {exc}"
        ) from exc


def sanitize(
    targets: Sequence[SanitizeTarget],
    *,
    hash_seeds: tuple[str, str] = DEFAULT_HASH_SEEDS,
    timeout: float = 600.0,
    echo: bool = True,
) -> int:
    """Run each target under both hash seeds and diff; exit-code semantics."""
    if hash_seeds[0] == hash_seeds[1]:
        raise SanitizeError(
            f"hash seeds must differ to prove anything, got {hash_seeds}"
        )
    divergent = 0
    for target in targets:
        first = run_target(target, hash_seeds[0], timeout=timeout)
        second = run_target(target, hash_seeds[1], timeout=timeout)
        hit = structural_diff(first, second)
        if hit is None:
            if echo:
                print(
                    f"sanitize: {target.name}: reproducible under "
                    f"PYTHONHASHSEED {hash_seeds[0]} vs {hash_seeds[1]}"
                )
        else:
            divergent += 1
            if echo:
                print(
                    f"sanitize: {target.name}: DIVERGENT — first divergent "
                    f"path {hit}"
                )
    return 1 if divergent else 0


def sanitize_overflow(
    targets: Sequence[SanitizeTarget],
    *,
    hash_seed: str = DEFAULT_HASH_SEEDS[0],
    errstate: str = OVERFLOW_ERRSTATE,
    timeout: float = 600.0,
    echo: bool = True,
) -> int:
    """Run each target clean and under the numpy error-state trap.

    A target that crashes only under the trap hit a real numpy
    overflow/invalid the stock run swallowed as a warning; a target whose
    trapped artefact differs from the clean one proves the error state
    leaked into values.  Either counts as a finding (exit ``1``).
    """
    from repro.fastgraph.guard import ERRSTATE_ENV

    findings = 0
    for target in targets:
        clean = run_target(target, hash_seed, timeout=timeout)
        try:
            trapped = run_target(
                target,
                hash_seed,
                timeout=timeout,
                extra_env={ERRSTATE_ENV: errstate},
            )
        except SanitizeError as exc:
            findings += 1
            if echo:
                print(f"sanitize: {target.name}: OVERFLOW TRAPPED — {exc}")
            continue
        hit = structural_diff(clean, trapped)
        if hit is not None:
            findings += 1
            if echo:
                print(
                    f"sanitize: {target.name}: DIVERGENT under the "
                    f"overflow trap — first divergent path {hit}"
                )
        elif echo:
            print(
                f"sanitize: {target.name}: no numpy overflow/invalid "
                f"under {errstate}"
            )
    return 1 if findings else 0


# -- CLI wiring --------------------------------------------------------------


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add ``sanitize`` arguments onto a (sub)parser."""
    parser.add_argument(
        "--mode",
        choices=("hashseed", "overflow"),
        default="hashseed",
        help=(
            "hashseed: A/B runs under different PYTHONHASHSEED values; "
            "overflow: clean vs numpy over=raise,invalid=raise trap "
            "(default: hashseed)"
        ),
    )
    parser.add_argument(
        "--seeds",
        nargs=2,
        default=list(DEFAULT_HASH_SEEDS),
        metavar=("A", "B"),
        help="the two PYTHONHASHSEED values (default: 0 1)",
    )
    parser.add_argument(
        "--target",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named stock target (repeatable)",
    )
    parser.add_argument(
        "--cmd",
        default=None,
        metavar="COMMAND",
        help=(
            "custom shell-style command to sanitize instead of the stock "
            "targets; write the artefact to the substituted {out} path, or "
            "print JSON on stdout when no {out} appears"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="per-run subprocess timeout in seconds (default: 600)",
    )
    parser.add_argument(
        "--list-targets",
        action="store_true",
        help="print the stock targets and exit",
    )


def _selected_targets(args: argparse.Namespace) -> list[SanitizeTarget]:
    if args.cmd is not None:
        import shlex

        argv = tuple(shlex.split(args.cmd))
        if not argv:
            raise SanitizeError("--cmd is empty")
        return [SanitizeTarget(name="custom", argv=argv)]
    stock = default_targets()
    if not args.target:
        return stock
    by_name = {t.name: t for t in stock}
    missing = [n for n in args.target if n not in by_name]
    if missing:
        raise SanitizeError(
            f"unknown sanitize target(s) {missing}; "
            f"known: {sorted(by_name)}"
        )
    return [by_name[n] for n in args.target]


def run(args: argparse.Namespace) -> int:
    """Execute the sanitize subcommand; returns the process exit code."""
    try:
        if args.list_targets:
            for target in default_targets():
                print(f"{target.name}: {' '.join(target.argv)}")
            return 0
        targets = _selected_targets(args)
        if args.mode == "overflow":
            return sanitize_overflow(
                targets, hash_seed=args.seeds[0], timeout=args.timeout
            )
        return sanitize(
            targets,
            hash_seeds=(args.seeds[0], args.seeds[1]),
            timeout=args.timeout,
        )
    except ReproError as exc:
        print(f"sanitize: error: {exc}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.devtools.sanitize``)."""
    parser = argparse.ArgumentParser(
        prog="sanitize",
        description="dynamic determinism sanitizer (PYTHONHASHSEED A/B runs)",
    )
    configure_parser(parser)
    return run(parser.parse_args(list(argv) if argv is not None else None))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
