"""Static verification index: invariant specs × symbolic execution.

This is the bridge between three ingredients:

* the **invariant-spec registry** (``register_invariants(InvariantSpec(...))``
  calls in the linted sources, extracted syntactically — the linted tree is
  the source of truth, not whatever happens to be importable),
* the **codec registry** (``register_codec("Family", factory)`` calls), and
* the **symbolic executor** (:mod:`.symexec`), which evaluates the linted
  kernels without importing them.

The HB8xx rules consume the check methods below; each method enumerates a
small parameter point exhaustively through the machine and returns
*witness* dictionaries for definite violations only.  Anything the
executor cannot model (``Unsupported``) silently skips — those families
are covered at runtime by ``hyperbutterfly prove`` instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.devtools.reprolint.rules.base import dotted_name
from repro.devtools.reprolint.symexec import (
    ArrayVal,
    Evaluator,
    Program,
    SymRaise,
    Unsupported,
)
from repro.topologies.invariants import eval_param_expr

if TYPE_CHECKING:
    from repro.devtools.reprolint.context import FileContext, ProjectContext

__all__ = ["SpecInfo", "CodecRegistration", "VerificationIndex"]

#: lint-time sweeps stay below this node count (prove sweeps the full grids)
LINT_NODE_CAP = 160
#: lint-time sweeps use at most this many small points per family
LINT_POINT_CAP = 2


@dataclass(frozen=True)
class SpecInfo:
    """One statically extracted ``register_invariants`` call."""

    family: str
    params: tuple[str, ...]
    build_name: str
    module: str
    path: str
    lineno: int
    col: int
    small: tuple[tuple[int, ...], ...]
    large: tuple[tuple[int, ...], ...]
    degree: str | None
    degree_min: str | None
    degree_max: str | None
    regular: bool
    paper: str

    def env_at(self, point: tuple[int, ...]) -> dict[str, int]:
        return dict(zip(self.params, point))

    def degree_bounds_at(self, point: tuple[int, ...]) -> tuple[int | None, int | None]:
        env = self.env_at(point)
        if self.degree is not None:
            d = eval_param_expr(self.degree, env)
            return (d, d)
        lo = eval_param_expr(self.degree_min, env) if self.degree_min else None
        hi = eval_param_expr(self.degree_max, env) if self.degree_max else None
        return (lo, hi)


@dataclass(frozen=True)
class CodecRegistration:
    """One statically extracted ``register_codec`` call."""

    family: str
    factory_name: str | None
    module: str
    path: str
    lineno: int
    col: int


@dataclass
class _FamilyState:
    """Cached symbolic instances for one (family, point)."""

    topology: Any = None
    codec: Any = None
    nodes: list[Any] | None = None
    skipped: bool = False


class VerificationIndex:
    """Spec/codec extraction plus cached symbolic instantiation."""

    def __init__(self, ctx: "ProjectContext") -> None:
        self.specs: dict[str, SpecInfo] = {}
        self.codec_registrations: dict[str, CodecRegistration] = {}
        sources = []
        for fctx in ctx.library_files:
            sources.append((fctx.module_name, fctx.tree))
            self._scan_file(fctx)
        self.evaluator = Evaluator(Program.from_sources(sources))
        self._states: dict[tuple[str, tuple[int, ...]], _FamilyState] = {}

    # -- extraction --------------------------------------------------------

    def _scan_file(self, fctx: "FileContext") -> None:
        for node in ast.walk(fctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            tail = callee.split(".")[-1] if callee else ""
            if tail == "register_invariants":
                spec = self._extract_spec(node, fctx)
                if spec is not None:
                    self.specs[spec.family] = spec
            elif tail == "register_codec":
                reg = self._extract_codec_registration(node, fctx)
                if reg is not None:
                    self.codec_registrations[reg.family] = reg

    def _extract_spec(self, call: ast.Call, fctx: "FileContext") -> SpecInfo | None:
        if not call.args:
            return None
        inner = call.args[0]
        if not (isinstance(inner, ast.Call) and dotted_name(inner.func)):
            return None
        if dotted_name(inner.func).split(".")[-1] != "InvariantSpec":  # type: ignore[union-attr]
            return None
        fields: dict[str, Any] = {}
        build_name: str | None = None
        for kw in inner.keywords:
            if kw.arg == "build":
                build_name = dotted_name(kw.value)
                continue
            if kw.arg is None:
                continue
            try:
                fields[kw.arg] = ast.literal_eval(kw.value)
            except (ValueError, SyntaxError):
                return None
        family = fields.get("family")
        params = fields.get("params")
        if not isinstance(family, str) or not isinstance(params, tuple) or build_name is None:
            return None
        return SpecInfo(
            family=family,
            params=tuple(str(p) for p in params),
            build_name=build_name.split(".")[-1],
            module=fctx.module_name,
            path=fctx.path,
            lineno=call.lineno,
            col=call.col_offset,
            small=tuple(tuple(p) for p in fields.get("small", ())),
            large=tuple(tuple(p) for p in fields.get("large", ())),
            degree=fields.get("degree"),
            degree_min=fields.get("degree_min"),
            degree_max=fields.get("degree_max"),
            regular=bool(fields.get("regular", True)),
            paper=str(fields.get("paper", "")),
        )

    def _extract_codec_registration(
        self, call: ast.Call, fctx: "FileContext"
    ) -> CodecRegistration | None:
        if not call.args:
            return None
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            family = first.value
        else:
            name = dotted_name(first)
            if name is None:
                return None
            family = name.split(".")[-1]
        factory_name: str | None = None
        if len(call.args) > 1:
            factory_name_dotted = dotted_name(call.args[1])
            if factory_name_dotted:
                factory_name = factory_name_dotted.split(".")[-1]
        return CodecRegistration(
            family=family,
            factory_name=factory_name,
            module=fctx.module_name,
            path=fctx.path,
            lineno=call.lineno,
            col=call.col_offset,
        )

    # -- derived views -----------------------------------------------------

    def families_missing_specs(self) -> list[CodecRegistration]:
        """Codec-registered families with no invariant spec (HB806)."""
        return [
            reg
            for family, reg in sorted(self.codec_registrations.items())
            if family not in self.specs
        ]

    def lint_points(self, spec: SpecInfo) -> list[tuple[int, ...]]:
        """The small points a lint run sweeps (prove sweeps all of them)."""
        return list(spec.small[:LINT_POINT_CAP])

    # -- symbolic instantiation (cached) -----------------------------------

    def _state(self, spec: SpecInfo, point: tuple[int, ...]) -> _FamilyState:
        key = (spec.family, point)
        state = self._states.get(key)
        if state is not None:
            return state
        state = _FamilyState()
        self._states[key] = state
        ev = self.evaluator
        try:
            build = ev.program.lookup(spec.module, spec.build_name)
        except KeyError:
            build = ev.class_named(spec.build_name)
        if build is None:
            state.skipped = True
            return state
        try:
            state.topology = ev.machine.call(build, list(point), {})
            nodes = ev.call_method(state.topology, "nodes", [])
            num_nodes = ev.get_attr(state.topology, "num_nodes")
            if not isinstance(nodes, list) or len(nodes) != num_nodes:
                # structural disagreement is caught by the degree/bijection
                # checks; a non-list nodes() result is out of model
                state.skipped = not isinstance(nodes, list)
            state.nodes = nodes if isinstance(nodes, list) else None
            if state.nodes is not None and len(state.nodes) > LINT_NODE_CAP:
                state.skipped = True
                state.nodes = None
        except (Unsupported, SymRaise):
            state.skipped = True
            return state
        reg = self.codec_registrations.get(spec.family)
        if reg is not None and reg.factory_name is not None and not state.skipped:
            try:
                factory = ev.program.lookup(reg.module, reg.factory_name)
                state.codec = ev.machine.call(factory, [state.topology], {})
            except (KeyError, Unsupported, SymRaise):
                state.codec = None
        return state

    # -- checks (each yields definite-counterexample witnesses) ------------

    def check_bijectivity(self, spec: SpecInfo, point: tuple[int, ...]) -> Iterator[dict]:
        """HB801: ``rank∘unrank`` must be the identity on ``[0, N)``."""
        state = self._state(spec, point)
        if state.skipped or state.codec is None or state.nodes is None:
            return
        ev = self.evaluator
        n = len(state.nodes)
        try:
            for idx in range(n):
                label = ev.call_method(state.codec, "unrank", [idx])
                back = ev.call_method(state.codec, "rank", [label])
                if back != idx:
                    yield {
                        "family": spec.family,
                        "params": list(point),
                        "idx": idx,
                        "label": repr(label),
                        "rank_of_unrank": repr(back),
                    }
                    return
        except (Unsupported, SymRaise):
            return

    def check_neighbor_symmetry(self, spec: SpecInfo, point: tuple[int, ...]) -> Iterator[dict]:
        """HB802: ``u ∈ N(v)`` must imply ``v ∈ N(u)`` (undirected graphs)."""
        state = self._state(spec, point)
        if state.skipped or state.nodes is None:
            return
        ev = self.evaluator
        try:
            adjacency = {
                repr(v): (v, ev.call_method(state.topology, "neighbors", [v]))
                for v in state.nodes
            }
            for _key, (v, nbrs) in adjacency.items():
                for u in nbrs:
                    entry = adjacency.get(repr(u))
                    if entry is None:
                        continue  # invalid labels are HB804's business
                    if v not in entry[1]:
                        yield {
                            "family": spec.family,
                            "params": list(point),
                            "v": repr(v),
                            "u": repr(u),
                        }
                        return
        except (Unsupported, SymRaise):
            return

    def check_degree_formula(self, spec: SpecInfo, point: tuple[int, ...]) -> Iterator[dict]:
        """HB803: vertex degrees must match the spec's paper formula."""
        state = self._state(spec, point)
        if state.skipped or state.nodes is None:
            return
        try:
            lo, hi = spec.degree_bounds_at(point)
        except Exception:  # malformed expr — the spec test suite owns this
            return
        ev = self.evaluator
        degrees = set()
        try:
            for v in state.nodes:
                nbrs = ev.call_method(state.topology, "neighbors", [v])
                deg = len(nbrs)
                degrees.add(deg)
                if (lo is not None and deg < lo) or (hi is not None and deg > hi):
                    yield {
                        "family": spec.family,
                        "params": list(point),
                        "v": repr(v),
                        "degree": deg,
                        "expected_min": lo,
                        "expected_max": hi,
                    }
                    return
            if spec.regular and len(degrees) > 1:
                yield {
                    "family": spec.family,
                    "params": list(point),
                    "degrees_seen": sorted(degrees),
                    "expected_regular": True,
                }
        except (Unsupported, SymRaise):
            return

    def check_label_safety(self, spec: SpecInfo, point: tuple[int, ...]) -> Iterator[dict]:
        """HB804: no self-loops, no unreachable/invalid neighbor labels."""
        state = self._state(spec, point)
        if state.skipped or state.nodes is None:
            return
        ev = self.evaluator
        try:
            for v in state.nodes:
                for u in ev.call_method(state.topology, "neighbors", [v]):
                    if u == v:
                        yield {
                            "family": spec.family,
                            "params": list(point),
                            "v": repr(v),
                            "kind": "self-loop",
                        }
                        return
                    valid = ev.call_method(state.topology, "has_node", [u])
                    if valid is False:
                        yield {
                            "family": spec.family,
                            "params": list(point),
                            "v": repr(v),
                            "u": repr(u),
                            "kind": "invalid-label",
                        }
                        return
        except (Unsupported, SymRaise):
            return
        if state.codec is None or state.nodes is None:
            return
        n = len(state.nodes)
        try:
            for idx in range(n):
                row = self._block_row(state.codec, idx)
                if row is None:
                    return
                for entry in row:
                    if not isinstance(entry, int) or entry < -1 or entry >= n:
                        yield {
                            "family": spec.family,
                            "params": list(point),
                            "idx": idx,
                            "entry": repr(entry),
                            "kind": "out-of-range-rank",
                        }
                        return
        except (Unsupported, SymRaise):
            return

    def check_scalar_block_agreement(
        self, spec: SpecInfo, point: tuple[int, ...]
    ) -> Iterator[dict]:
        """HB805: ``neighbors_block`` rows must equal ranked scalar neighbors."""
        state = self._state(spec, point)
        if state.skipped or state.codec is None or state.nodes is None:
            return
        ev = self.evaluator
        n = len(state.nodes)
        try:
            supports = ev.call_method(state.codec, "supports_implicit", [])
            if supports is not True:
                return
            for idx in range(n):
                row = self._block_row(state.codec, idx)
                if row is None:
                    return
                block = [e for e in row if not (isinstance(e, int) and e < 0)]
                label = ev.call_method(state.codec, "unrank", [idx])
                scalar = [
                    ev.call_method(state.codec, "rank", [u])
                    for u in ev.call_method(state.topology, "neighbors", [label])
                ]
                if block != scalar:
                    yield {
                        "family": spec.family,
                        "params": list(point),
                        "idx": idx,
                        "block_row": repr(block),
                        "scalar_ranks": repr(scalar),
                    }
                    return
        except (Unsupported, SymRaise):
            return

    def _block_row(self, codec: Any, idx: int) -> list[Any] | None:
        out = self.evaluator.call_method(codec, "neighbors_block", [idx])
        if isinstance(out, ArrayVal):
            return list(out.cols)
        if isinstance(out, list):
            return out
        return None
