"""Symbolic execution of pure bit-arithmetic kernels over their ASTs.

The verification layer (the HB8xx rules and ``hyperbutterfly prove``)
needs to evaluate the *linted sources themselves* — codec ``rank`` /
``unrank`` / ``neighbors_block`` kernels and scalar ``Topology.neighbors``
generators — without importing them, both concretely (exhaustive
small-width enumeration) and abstractly (fixed-width bit-vector reasoning
at widths where enumeration is out of reach).  This module provides both
engines:

* :class:`BitVec` — an abstract integer combining an interval with
  known-bits information over Python's arbitrary-precision two's
  complement, precise enough to prove e.g. that the butterfly rank
  ``(x2 << n) | (c ^ rotated)`` stays below ``n·2^n``.
* :class:`Machine` — an AST interpreter with join semantics: concrete
  Python values flow through untouched (the fast path behind the rules'
  exhaustive sweeps); an abstract operand lifts the operation into the
  bit-vector domain; an ``if`` on an undecidable condition executes both
  arms and joins the environments.  numpy array code is modelled
  element-wise (an array is one abstract element, :class:`ArrayVal` is a
  row of columns), which matches the pointwise ``neighbors_block``
  kernels exactly — and with concrete inputs the same model reproduces
  one concrete row.
* :class:`Evaluator` — the facade used by rules and the prover: resolve
  classes and functions across the linted file set, instantiate classes,
  call methods, and *reflect* live runtime objects into symbolic
  instances for abstract certification.

Soundness contract: anything outside the modelled subset raises
:class:`Unsupported` — callers must skip, never report.  A lint finding is
therefore always backed by a concrete counterexample, and the prover
labels abstract-only results as such in the ledger.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "Unsupported",
    "BudgetExceeded",
    "SymRaise",
    "Bool3",
    "BitVec",
    "ArrayVal",
    "InstanceVal",
    "ClassVal",
    "FuncVal",
    "Program",
    "Machine",
    "Evaluator",
    "OPAQUE",
]

#: sentinel trailing-known-bit count meaning "every bit is known"
_INF_BITS = 1 << 16
#: cap on members enumerated when joining over an abstract operand
_ENUM_LIMIT = 128


class Unsupported(Exception):
    """The executor met a construct outside its modelled subset.

    Callers must treat this as "no information" and skip — conservative
    by design, so ignorance can never produce a false finding.
    """


class BudgetExceeded(Unsupported):
    """The per-call step budget ran out (runaway loop guard)."""


class SymRaise(Exception):
    """The interpreted code *definitely* raises on the given input."""

    def __init__(self, exc_name: str, detail: str = "") -> None:
        super().__init__(f"{exc_name}: {detail}" if detail else exc_name)
        self.exc_name = exc_name
        self.detail = detail


class Bool3(Enum):
    """Three-valued truth for abstract comparisons."""

    TRUE = "true"
    FALSE = "false"
    MAYBE = "maybe"

    @staticmethod
    def of(flag: bool) -> "Bool3":
        return Bool3.TRUE if flag else Bool3.FALSE

    def negate(self) -> "Bool3":
        if self is Bool3.TRUE:
            return Bool3.FALSE
        if self is Bool3.FALSE:
            return Bool3.TRUE
        return Bool3.MAYBE

    def and3(self, other: "Bool3") -> "Bool3":
        if Bool3.FALSE in (self, other):
            return Bool3.FALSE
        if self is Bool3.TRUE and other is Bool3.TRUE:
            return Bool3.TRUE
        return Bool3.MAYBE

    def or3(self, other: "Bool3") -> "Bool3":
        if Bool3.TRUE in (self, other):
            return Bool3.TRUE
        if self is Bool3.FALSE and other is Bool3.FALSE:
            return Bool3.FALSE
        return Bool3.MAYBE

    def join(self, other: "Bool3") -> "Bool3":
        return self if self is other else Bool3.MAYBE


def _trailing_known(mask: int) -> int:
    """Number of consecutive known low bits in a known-bits ``mask``."""
    inv = ~mask
    if inv == 0:
        return _INF_BITS
    return (inv & -inv).bit_length() - 1


@dataclass(frozen=True)
class BitVec:
    """Abstract integer: interval ``[lo, hi]`` + known bits.

    ``mask`` marks the known bit positions of every member and ``value``
    holds those bits (``value == value & mask``).  Python integers are
    infinite two's complement, so ``mask = -1`` means fully known and a
    *negative* mask (e.g. ``-(1 << k)``) means "all bits from ``k``
    upward known" — which is how non-negativity is tracked.
    """

    lo: int
    hi: int
    mask: int
    value: int

    # -- constructors -----------------------------------------------------

    @staticmethod
    def concrete(v: int) -> "BitVec":
        return BitVec(v, v, -1, v)

    @staticmethod
    def range(lo: int, hi: int) -> "BitVec":
        if lo > hi:
            raise Unsupported(f"empty bitvec range [{lo}, {hi}]")
        return _make(lo, hi, 0, 0)

    @property
    def is_concrete(self) -> bool:
        return self.lo == self.hi

    def contains(self, v: int) -> bool:
        return self.lo <= v <= self.hi and (v & self.mask) == self.value

    def members(self, limit: int = _ENUM_LIMIT) -> list[int]:
        """All members, if there are at most ``limit`` interval points."""
        if self.hi - self.lo + 1 > limit:
            raise Unsupported(f"bitvec [{self.lo}, {self.hi}] too wide to enumerate")
        return [v for v in range(self.lo, self.hi + 1) if (v & self.mask) == self.value]

    def join(self, other: "BitVec") -> "BitVec":
        mask = self.mask & other.mask & ~(self.value ^ other.value)
        return _make(min(self.lo, other.lo), max(self.hi, other.hi), mask, self.value & mask)

    # -- arithmetic transfer functions ------------------------------------

    def add(self, other: "BitVec") -> "BitVec":
        t = min(_trailing_known(self.mask), _trailing_known(other.mask))
        tm = -1 if t >= _INF_BITS else (1 << t) - 1
        return _make(
            self.lo + other.lo, self.hi + other.hi, tm, (self.value + other.value) & tm
        )

    def sub(self, other: "BitVec") -> "BitVec":
        t = min(_trailing_known(self.mask), _trailing_known(other.mask))
        tm = -1 if t >= _INF_BITS else (1 << t) - 1
        return _make(
            self.lo - other.hi, self.hi - other.lo, tm, (self.value - other.value) & tm
        )

    def mul(self, other: "BitVec") -> "BitVec":
        corners = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        t = min(_trailing_known(self.mask), _trailing_known(other.mask))
        tm = -1 if t >= _INF_BITS else (1 << t) - 1
        return _make(
            min(corners), max(corners), tm, (self.value * other.value) & tm
        )

    def floordiv(self, other: "BitVec") -> "BitVec":
        if not other.is_concrete:
            return self._enum_binop(other, BitVec.floordiv)
        k = other.lo
        if k == 0:
            raise SymRaise("ZeroDivisionError", "integer division by zero")
        if k > 0 and k & (k - 1) == 0:
            # x // 2**j == x >> j for every Python int (both floor)
            return self.rshift(BitVec.concrete(k.bit_length() - 1))
        lo, hi = (self.lo // k, self.hi // k) if k > 0 else (self.hi // k, self.lo // k)
        return _make(lo, hi, 0, 0)

    def mod(self, other: "BitVec") -> "BitVec":
        if not other.is_concrete:
            return self._enum_binop(other, BitVec.mod)
        k = other.lo
        if k == 0:
            raise SymRaise("ZeroDivisionError", "integer modulo by zero")
        if k < 0:
            raise Unsupported("modulo by negative divisor")
        if self.lo // k == self.hi // k:
            # whole interval in one residue block — exact
            return _make(self.lo % k, self.hi % k, self.mask & (k - 1) if k & (k - 1) == 0 else 0, 0) \
                if False else _make(self.lo % k, self.hi % k, 0, 0)
        if k & (k - 1) == 0:
            # x % 2**j == x & (2**j - 1) for every Python int
            low = k - 1
            mask = (self.mask & low) | ~low
            return _make(0, low, mask, self.value & low & mask)
        return _make(0, k - 1, 0, 0)

    def neg(self) -> "BitVec":
        return BitVec.concrete(0).sub(self)

    def invert(self) -> "BitVec":
        return _make(-self.hi - 1, -self.lo - 1, self.mask, ~self.value & self.mask)

    def _span_bits(self, other: "BitVec") -> int:
        """``k`` such that every member of both operands lies in
        ``[-2^k, 2^k)`` — bitwise ops cannot escape that band."""
        return 1 + max(
            self.lo.bit_length(), self.hi.bit_length(),
            other.lo.bit_length(), other.hi.bit_length(),
        )

    def and_(self, other: "BitVec") -> "BitVec":
        ones = (self.mask & self.value) & (other.mask & other.value)
        zeros = (self.mask & ~self.value) | (other.mask & ~other.value)
        mask = ones | zeros
        if self.lo >= 0 and other.lo >= 0:
            lo, hi = 0, min(self.hi, other.hi)
        elif self.lo >= 0:
            # a non-negative operand clears the sign and caps the result
            lo, hi = 0, self.hi
        elif other.lo >= 0:
            lo, hi = 0, other.hi
        else:
            # x & y <= max(x, y) always; below, the ±2^k band bounds it
            lo, hi = -(1 << self._span_bits(other)), max(self.hi, other.hi)
        return _make(lo, hi, mask, ones)

    def or_(self, other: "BitVec") -> "BitVec":
        ones = (self.mask & self.value) | (other.mask & other.value)
        zeros = (self.mask & ~self.value) & (other.mask & ~other.value)
        mask = ones | zeros
        # x | y >= max(x, y) for same-sign pairs and >= the negative operand
        # for mixed pairs, so min of the lows is always a sound floor (and
        # max of the lows when both operands are certainly non-negative)
        if self.lo >= 0 and other.lo >= 0:
            lo = max(self.lo, other.lo)
        else:
            lo = min(self.lo, other.lo)
        if self.hi >= 0 and other.hi >= 0:
            # a non-negative result needs both operands non-negative
            width = max(self.hi.bit_length(), other.hi.bit_length())
            hi = min(self.hi + other.hi, (1 << width) - 1)
        else:
            hi = -1
        return _make(lo, hi, mask, ones)

    def xor(self, other: "BitVec") -> "BitVec":
        mask = self.mask & other.mask
        if self.lo >= 0 and other.lo >= 0:
            width = max(self.hi.bit_length(), other.hi.bit_length())
            lo, hi = 0, (1 << width) - 1
        else:
            width = max(
                self.lo.bit_length(), self.hi.bit_length(),
                other.lo.bit_length(), other.hi.bit_length(),
            ) + 1
            lo, hi = -(1 << width), (1 << width) - 1
        return _make(lo, hi, mask, (self.value ^ other.value) & mask)

    def lshift(self, other: "BitVec") -> "BitVec":
        if not other.is_concrete:
            return self._enum_binop(other, BitVec.lshift, enumerate_other=True)
        k = other.lo
        if k < 0:
            raise SymRaise("ValueError", "negative shift count")
        return _make(
            self.lo << k, self.hi << k,
            (self.mask << k) | ((1 << k) - 1), self.value << k,
        )

    def rshift(self, other: "BitVec") -> "BitVec":
        if not other.is_concrete:
            return self._enum_binop(other, BitVec.rshift, enumerate_other=True)
        k = other.lo
        if k < 0:
            raise SymRaise("ValueError", "negative shift count")
        return _make(self.lo >> k, self.hi >> k, self.mask >> k, self.value >> k)

    def _enum_binop(
        self,
        other: "BitVec",
        op: Callable[["BitVec", "BitVec"], "BitVec"],
        *,
        enumerate_other: bool = True,
    ) -> "BitVec":
        """Join ``op`` over every member of the (small) abstract operand."""
        out: BitVec | None = None
        for v in other.members():
            res = op(self, BitVec.concrete(v))
            out = res if out is None else out.join(res)
        if out is None:
            raise Unsupported("empty operand enumeration")
        return out

    # -- comparisons ------------------------------------------------------

    def eq(self, other: "BitVec") -> Bool3:
        if self.is_concrete and other.is_concrete:
            return Bool3.of(self.lo == other.lo)
        if self.hi < other.lo or other.hi < self.lo:
            return Bool3.FALSE
        if (self.value ^ other.value) & self.mask & other.mask:
            return Bool3.FALSE
        return Bool3.MAYBE

    def lt(self, other: "BitVec") -> Bool3:
        if self.hi < other.lo:
            return Bool3.TRUE
        if self.lo >= other.hi:
            return Bool3.FALSE
        return Bool3.MAYBE

    def le(self, other: "BitVec") -> Bool3:
        if self.hi <= other.lo:
            return Bool3.TRUE
        if self.lo > other.hi:
            return Bool3.FALSE
        return Bool3.MAYBE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_concrete:
            return f"BitVec({self.lo})"
        return f"BitVec[{self.lo}, {self.hi}; mask={self.mask:#x}, value={self.value:#x}]"


def _make(lo: int, hi: int, mask: int, value: int) -> BitVec:
    """Normalize: reconcile interval and known bits, collapse to concrete."""
    value &= mask
    if lo == hi:
        return BitVec(lo, lo, -1, lo)
    if mask < 0:
        # all high bits known: members are value | (subset of ~mask)
        unknown = ~mask
        lo = max(lo, value)
        hi = min(hi, value | unknown)
    if lo > hi:
        raise Unsupported("contradictory bitvec (unsound transfer?)")
    if lo == hi:
        return BitVec(lo, lo, -1, lo)
    diff = lo ^ hi
    if diff >= 0:
        # same-sign bounds share the prefix above the top differing bit
        k = diff.bit_length()
        pmask = -(1 << k)
        pval = lo & pmask
        if (mask & pmask) & (value ^ pval):
            raise Unsupported("contradictory bitvec (interval vs known bits)")
        value = (value & mask) | (pval & ~mask)
        mask |= pmask
    return BitVec(lo, hi, mask, value & mask)


# ---------------------------------------------------------------------------
# interpreter values
# ---------------------------------------------------------------------------


class _OpaqueType:
    """Marker for a binding the executor can't model (attribute access on
    it raises :class:`Unsupported`)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "OPAQUE"


OPAQUE = _OpaqueType()


class _NumpyModule:
    """Marker bound to ``np`` by ``import numpy as np``."""


_NUMPY = _NumpyModule()


@dataclass
class _NumpyFunc:
    name: str


@dataclass
class FuncVal:
    """A function (or method) definition found in the linted sources."""

    node: ast.FunctionDef
    module: str

    def _decorators(self) -> list[str]:
        out = []
        for dec in self.node.decorator_list:
            if isinstance(dec, ast.Name):
                out.append(dec.id)
            elif isinstance(dec, ast.Attribute):
                out.append(dec.attr)
        return out

    @property
    def is_property(self) -> bool:
        return "property" in self._decorators()

    @property
    def is_static(self) -> bool:
        return "staticmethod" in self._decorators()


@dataclass
class ClassVal:
    """A class definition found in the linted sources."""

    node: ast.ClassDef
    module: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.node.name)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_dataclass(self) -> bool:
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "dataclass":
                return True
        return False


@dataclass
class InstanceVal:
    """An object: its (resolved) class plus an attribute environment."""

    cls: ClassVal | None
    attrs: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.cls.name if self.cls else "?"
        return f"<sym {name} {sorted(self.attrs)}>"


@dataclass
class BoundMethod:
    func: FuncVal
    self_val: Any
    defining_class: ClassVal | None


@dataclass
class _SuperProxy:
    instance: Any
    after: ClassVal


@dataclass
class _ConcreteCallable:
    """A real bound method of a concrete builtin value (``list.append``…)."""

    fn: Callable[..., Any]


@dataclass
class ArrayVal:
    """Scalar model of a 2-D numpy array: a list of per-column elements."""

    cols: list[Any]


_SAFE_CONCRETE = (bool, int, float, str, bytes, list, tuple, set, frozenset, dict)


def _is_plain(value: Any) -> bool:
    """Whether ``value`` is a fully concrete Python value (recursively)."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return True
    if isinstance(value, (list, tuple, set, frozenset)):
        return all(_is_plain(v) for v in value)
    if isinstance(value, dict):
        return all(_is_plain(k) and _is_plain(v) for k, v in value.items())
    if isinstance(value, range):
        return True
    return False


def _lift(value: Any) -> BitVec:
    if isinstance(value, BitVec):
        return value
    if isinstance(value, bool):
        return BitVec.concrete(int(value))
    if isinstance(value, int):
        return BitVec.concrete(value)
    raise Unsupported(f"cannot lift {type(value).__name__} into the bit-vector domain")


# ---------------------------------------------------------------------------
# program: the linted file set as a resolvable module universe
# ---------------------------------------------------------------------------


@dataclass
class _ImportBinding:
    module: str
    name: str | None  # None: ``import module`` binding


@dataclass
class _ExprBinding:
    expr: ast.expr
    module: str


class Program:
    """All linted modules, with lazy cross-module name resolution."""

    def __init__(self, modules: dict[str, ast.Module]) -> None:
        self.modules = modules
        self._bindings: dict[str, dict[str, Any]] = {}
        self._resolving: set[tuple[str, str]] = set()

    @classmethod
    def from_sources(cls, sources: Iterable[tuple[str, ast.Module]]) -> "Program":
        """Build from ``(dotted module name, parsed tree)`` pairs."""
        return cls(dict(sources))

    # -- binding tables ----------------------------------------------------

    def _table(self, module: str) -> dict[str, Any]:
        cached = self._bindings.get(module)
        if cached is not None:
            return cached
        table: dict[str, Any] = {}
        tree = self.modules.get(module)
        if tree is not None:
            for stmt in tree.body:
                self._scan_stmt(stmt, module, table)
        self._bindings[module] = table
        return table

    def _scan_stmt(self, stmt: ast.stmt, module: str, table: dict[str, Any]) -> None:
        if isinstance(stmt, ast.FunctionDef):
            table[stmt.name] = FuncVal(stmt, module)
        elif isinstance(stmt, ast.ClassDef):
            table[stmt.name] = ClassVal(stmt, module)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                table[alias.asname or alias.name.split(".")[0]] = _ImportBinding(
                    alias.name, None
                )
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    table[alias.asname or alias.name] = _ImportBinding(
                        stmt.module, alias.name
                    )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    table[target.id] = _ExprBinding(stmt.value, module)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                table[stmt.target.id] = _ExprBinding(stmt.value, module)
        # deliberately not descending into If/Try bodies: TYPE_CHECKING-only
        # imports must stay invisible at runtime

    # -- resolution --------------------------------------------------------

    def lookup(self, module: str, name: str) -> Any:
        """Resolve ``name`` in ``module``'s top level (may chain imports).

        Raises :class:`KeyError` when the name is unbound there.
        """
        key = (module, name)
        if key in self._resolving:
            raise Unsupported(f"circular resolution of {module}.{name}")
        binding = self._table(module)[name]
        if isinstance(binding, _ImportBinding):
            self._resolving.add(key)
            try:
                resolved = self._resolve_import(binding)
            finally:
                self._resolving.discard(key)
            self._table(module)[name] = resolved
            return resolved
        return binding

    def _resolve_import(self, binding: _ImportBinding) -> Any:
        if binding.module.split(".")[0] == "numpy":
            return _NUMPY if binding.name is None else OPAQUE
        if binding.name is None:
            return OPAQUE
        target = binding.module
        if target in self.modules:
            try:
                return self.lookup(target, binding.name)
            except KeyError:
                pass
        pkg_init = target  # ``from pkg import name`` can also mean a submodule
        sub = f"{pkg_init}.{binding.name}"
        if sub in self.modules:
            return OPAQUE
        return OPAQUE

    def class_named(self, name: str) -> ClassVal | None:
        """Search every module for a top-level class definition ``name``."""
        for module in sorted(self.modules):
            binding = self._table(module).get(name)
            if isinstance(binding, ClassVal):
                return binding
        return None

    def classes(self) -> Iterator[ClassVal]:
        for module in sorted(self.modules):
            for binding in self._table(module).values():
                if isinstance(binding, ClassVal):
                    yield binding

    def mro(self, cls: ClassVal) -> list[ClassVal]:
        """Left-to-right depth-first linearization over resolvable bases.

        Exact for the single-inheritance chains used here; unresolvable
        bases (stdlib ABCs, ``object``) terminate a branch.
        """
        out: list[ClassVal] = []
        seen: set[tuple[str, str]] = set()

        def visit(c: ClassVal) -> None:
            if c.key in seen:
                return
            seen.add(c.key)
            out.append(c)
            for base in c.node.bases:
                name: str | None = None
                if isinstance(base, ast.Name):
                    name = base.id
                elif isinstance(base, ast.Attribute):
                    name = base.attr
                if name is None:
                    continue
                try:
                    resolved = self.lookup(c.module, name)
                except KeyError:
                    resolved = None
                if isinstance(resolved, ClassVal):
                    visit(resolved)

        visit(cls)
        return out

    def base_chain_names(self, cls: ClassVal) -> set[str]:
        """All class names in the resolvable base chain (incl. unresolved
        terminal base names, so "reaches a class named NodeCodec" works
        even if the base file isn't in the program)."""
        names: set[str] = set()
        for c in self.mro(cls):
            names.add(c.name)
            for base in c.node.bases:
                if isinstance(base, ast.Name):
                    names.add(base.id)
                elif isinstance(base, ast.Attribute):
                    names.add(base.attr)
        return names


# ---------------------------------------------------------------------------
# the machine
# ---------------------------------------------------------------------------


@dataclass
class _Frame:
    module: str
    defining_class: ClassVal | None
    self_val: Any
    returns: list[Any] = field(default_factory=list)
    possible_raises: list[str] = field(default_factory=list)
    #: non-None when executing a generator body: yields collect here
    yields: list[Any] | None = None


class _Flow:
    NORMAL = "normal"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    RAISE = "raise"

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any = None) -> None:
        self.kind = kind
        self.value = value


_NORMAL = _Flow(_Flow.NORMAL)

_BUILTIN_NAMES = frozenset(
    {
        "range", "len", "abs", "min", "max", "divmod", "int", "bool", "str",
        "float", "tuple", "list", "set", "dict", "zip", "enumerate", "sorted",
        "reversed", "sum", "isinstance", "super", "print", "iter",
    }
)

_EXCEPTION_NAMES = frozenset(
    {
        "ValueError", "TypeError", "KeyError", "IndexError", "RuntimeError",
        "NotImplementedError", "AssertionError", "ZeroDivisionError",
        "Exception", "ArithmeticError", "OverflowError", "StopIteration",
    }
)


@dataclass
class _BuiltinVal:
    name: str


class Machine:
    """AST interpreter over concrete values lifted into the BitVec domain."""

    def __init__(self, program: Program, max_steps: int = 300_000) -> None:
        self.program = program
        self.max_steps = max_steps
        self._steps = 0
        self._frames: list[_Frame] = []
        #: messages from raises inside MAYBE branches of the last call
        self.possible_raises: list[str] = []

    # -- public API --------------------------------------------------------

    def call(self, fn: Any, args: list[Any], kwargs: dict[str, Any] | None = None) -> Any:
        """Call a callable value from a fresh budget; outermost entry point."""
        self._steps = 0
        self.possible_raises = []
        result = self._call(fn, args, dict(kwargs or {}))
        return result

    def getattr_value(self, obj: Any, name: str) -> Any:
        """Attribute access with the machine's semantics (fresh budget)."""
        self._steps = 0
        return self._getattr(obj, name)

    def instantiate(self, cls: ClassVal, args: list[Any], kwargs: dict[str, Any] | None = None) -> InstanceVal:
        value = self.call(cls, args, kwargs)
        if not isinstance(value, InstanceVal):
            raise Unsupported(f"instantiating {cls.name} did not yield an instance")
        return value

    # -- bookkeeping -------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise BudgetExceeded(f"step budget {self.max_steps} exceeded")

    # -- calls -------------------------------------------------------------

    def _call(self, fn: Any, args: list[Any], kwargs: dict[str, Any]) -> Any:
        self._tick()
        if isinstance(fn, BoundMethod):
            return self._call_func(
                fn.func, [fn.self_val, *args], kwargs, defining_class=fn.defining_class
            )
        if isinstance(fn, FuncVal):
            return self._call_func(fn, args, kwargs, defining_class=None)
        if isinstance(fn, ClassVal):
            return self._instantiate(fn, args, kwargs)
        if isinstance(fn, _BuiltinVal):
            return self._call_builtin(fn.name, args, kwargs)
        if isinstance(fn, _NumpyFunc):
            return self._call_numpy(fn.name, args, kwargs)
        if isinstance(fn, _ConcreteCallable):
            return self._call_concrete(fn.fn, args, kwargs)
        raise Unsupported(f"call of unmodelled value {type(fn).__name__}")

    def _call_func(
        self,
        fn: FuncVal,
        args: list[Any],
        kwargs: dict[str, Any],
        *,
        defining_class: ClassVal | None,
    ) -> Any:
        env = self._bind_params(fn, args, kwargs)
        self_val = args[0] if defining_class is not None and args else None
        frame = _Frame(fn.module, defining_class, self_val)
        if any(
            isinstance(sub, (ast.Yield, ast.YieldFrom))
            for body_stmt in fn.node.body
            for sub in ast.walk(body_stmt)
        ):
            # generator body: run it eagerly into a list (concrete-only —
            # an abstract branch would scramble the yield order)
            frame.yields = []
        self._frames.append(frame)
        try:
            flow = self._exec_block(fn.node.body, env, frame)
        finally:
            self._frames.pop()
            self.possible_raises.extend(frame.possible_raises)
        if frame.yields is not None:
            if flow.kind == _Flow.RAISE:
                raise SymRaise(*flow.value) if isinstance(flow.value, tuple) else SymRaise(str(flow.value))
            return list(frame.yields)
        returns = list(frame.returns)
        if flow.kind == _Flow.RETURN:
            returns.append(flow.value)
        elif flow.kind == _Flow.RAISE:
            if returns:
                # some path returned, another raises — callers of the prover
                # treat a possible raise as advisory, not a counterexample
                frame_msg = str(flow.value)
                self.possible_raises.append(frame_msg)
            else:
                raise SymRaise(*flow.value) if isinstance(flow.value, tuple) else SymRaise(str(flow.value))
        elif flow.kind == _Flow.NORMAL:
            returns.append(None)
        else:  # break/continue escaping a function body — malformed
            raise Unsupported(f"loose {flow.kind} at function scope")
        out = returns[0]
        for other in returns[1:]:
            out = self._join_values(out, other)
        return out

    def _bind_params(
        self, fn: FuncVal, args: list[Any], kwargs: dict[str, Any]
    ) -> dict[str, Any]:
        node_args = fn.node.args
        if node_args.vararg or node_args.kwarg:
            raise Unsupported(f"{fn.node.name} uses *args/**kwargs")
        names = [a.arg for a in (*node_args.posonlyargs, *node_args.args)]
        env: dict[str, Any] = {}
        if len(args) > len(names):
            raise Unsupported(f"too many positional args for {fn.node.name}")
        for name, value in zip(names, args):
            env[name] = value
        defaults = node_args.defaults
        default_map = dict(zip(names[len(names) - len(defaults):], defaults))
        for name in names[len(args):]:
            if name in kwargs:
                env[name] = kwargs.pop(name)
            elif name in default_map:
                env[name] = self._eval(default_map[name], {}, _Frame(fn.module, None, None))
            else:
                raise Unsupported(f"missing argument {name!r} for {fn.node.name}")
        for kw_arg, kw_default in zip(node_args.kwonlyargs, node_args.kw_defaults):
            name = kw_arg.arg
            if name in kwargs:
                env[name] = kwargs.pop(name)
            elif kw_default is not None:
                env[name] = self._eval(kw_default, {}, _Frame(fn.module, None, None))
            else:
                raise Unsupported(f"missing keyword argument {name!r} for {fn.node.name}")
        if kwargs:
            raise Unsupported(
                f"unexpected keyword(s) {sorted(kwargs)} for {fn.node.name}"
            )
        return env

    def _instantiate(self, cls: ClassVal, args: list[Any], kwargs: dict[str, Any]) -> Any:
        if cls.name in _EXCEPTION_NAMES or cls.name.endswith(("Error", "Exception", "Warning")):
            detail = ", ".join(self._safe_str(a) for a in args)
            return _ExceptionInstance(cls.name, detail)
        if cls.is_dataclass:
            raise Unsupported(f"dataclass {cls.name} has no explicit __init__")
        instance = InstanceVal(cls)
        init = self._find_method(cls, "__init__")
        if init is not None:
            fn, defining = init
            self._call_func(fn, [instance, *args], kwargs, defining_class=defining)
        elif args or kwargs:
            raise Unsupported(f"{cls.name} has no resolvable __init__ but got args")
        return instance

    def _find_method(
        self, cls: ClassVal, name: str, *, start_after: ClassVal | None = None
    ) -> tuple[FuncVal, ClassVal] | None:
        mro = self.program.mro(cls)
        if start_after is not None:
            for i, c in enumerate(mro):
                if c.key == start_after.key:
                    mro = mro[i + 1:]
                    break
        for c in mro:
            for stmt in c.node.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                    return (FuncVal(stmt, c.module), c)
        return None

    def _find_class_attr(
        self, cls: ClassVal, name: str, *, start_after: ClassVal | None = None
    ) -> Any:
        mro = self.program.mro(cls)
        if start_after is not None:
            for i, c in enumerate(mro):
                if c.key == start_after.key:
                    mro = mro[i + 1:]
                    break
        for c in mro:
            for stmt in c.node.body:
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                        value = stmt.value
                if value is not None:
                    return self._eval(value, {}, _Frame(c.module, None, None))
        raise KeyError(name)  # reprolint: disable=HB202 -- mapping-style miss signal; callers catch it to fall through to other resolution, exactly like a dict lookup

    # -- builtins ----------------------------------------------------------

    def _call_builtin(self, name: str, args: list[Any], kwargs: dict[str, Any]) -> Any:
        if name == "super":
            if args:
                raise Unsupported("only zero-argument super() is modelled")
            frame = self._frames[-1] if self._frames else None
            if frame is None or frame.defining_class is None or frame.self_val is None:
                raise Unsupported("super() outside a method")
            return _SuperProxy(frame.self_val, frame.defining_class)
        if name == "isinstance":
            return self._builtin_isinstance(args)
        if name == "range":
            if not all(isinstance(a, int) for a in self._dewrap_ints(args)):
                raise Unsupported("abstract range bounds")
            return range(*self._dewrap_ints(args))
        if name == "len":
            obj = args[0]
            if isinstance(obj, (list, tuple, set, frozenset, dict, str, range)):
                return len(obj)
            if isinstance(obj, ArrayVal):
                raise Unsupported("len() of an abstract array")
            raise Unsupported(f"len() of {type(obj).__name__}")
        if name == "divmod":
            a, b = args
            return (self._binary("FloorDiv", a, b), self._binary("Mod", a, b))
        if name == "abs":
            (a,) = args
            if isinstance(a, (int, float)):
                return abs(a)
            bv = _lift(a)
            if bv.lo >= 0:
                return bv
            return bv.join(bv.neg())
        if name in ("min", "max"):
            values = list(args[0]) if len(args) == 1 and isinstance(args[0], (list, tuple, set)) else args
            if kwargs:
                raise Unsupported(f"{name}() with keywords")
            if all(isinstance(v, (int, float, str)) for v in values):
                return min(values) if name == "min" else max(values)
            lifted = [_lift(v) for v in values]
            if name == "min":
                return BitVec.range(
                    min(v.lo for v in lifted), min(v.hi for v in lifted)
                )
            return BitVec.range(max(v.lo for v in lifted), max(v.hi for v in lifted))
        if name == "int":
            (a,) = args or [0]
            if isinstance(a, (bool, int)):
                return int(a)
            if isinstance(a, BitVec):
                return a
            raise Unsupported("int() of non-integer")
        if name == "bool":
            (a,) = args or [False]
            truth = self._truth(a)
            if truth is Bool3.MAYBE:
                return Bool3.MAYBE
            return truth is Bool3.TRUE
        if name == "str":
            (a,) = args or [""]
            return self._safe_str(a)
        if name == "float":
            (a,) = args or [0.0]
            if isinstance(a, (bool, int, float)):
                return float(a)
            raise Unsupported("float() of abstract value")
        if name == "tuple":
            return tuple(self._iterate(args[0])) if args else ()
        if name == "list":
            return list(self._iterate(args[0])) if args else []
        if name == "set":
            items = list(self._iterate(args[0])) if args else []
            if not _is_plain(items):
                raise Unsupported("set of abstract values")
            return set(items)
        if name == "dict":
            if args or kwargs:
                raise Unsupported("dict() with arguments")
            return {}
        if name == "zip":
            strict = bool(kwargs.pop("strict", False))
            seqs = [list(self._iterate(a)) for a in args]
            if strict and len({len(s) for s in seqs}) > 1:
                raise SymRaise("ValueError", "zip() argument lengths differ")
            return [tuple(t) for t in zip(*seqs)]
        if name == "enumerate":
            start = int(kwargs.pop("start", 0))
            return list(enumerate(self._iterate(args[0]), start))
        if name == "sorted":
            items = list(self._iterate(args[0]))
            if not _is_plain(items) or kwargs:
                raise Unsupported("sorted() of abstract values")
            return sorted(items)
        if name == "reversed":
            return list(reversed(list(self._iterate(args[0]))))
        if name == "iter":
            return list(self._iterate(args[0]))
        if name == "sum":
            total: Any = 0
            for item in self._iterate(args[0]):
                total = self._binary("Add", total, item)
            return total
        if name == "print":
            return None
        raise Unsupported(f"builtin {name}() is not modelled")

    def _dewrap_ints(self, args: list[Any]) -> list[Any]:
        out = []
        for a in args:
            if isinstance(a, BitVec) and a.is_concrete:
                out.append(a.lo)
            else:
                out.append(a)
        return out

    def _builtin_isinstance(self, args: list[Any]) -> Any:
        obj, spec = args
        specs = spec if isinstance(spec, tuple) else (spec,)
        verdict = Bool3.FALSE
        for s in specs:
            verdict = verdict.or3(self._isinstance_one(obj, s))
        if verdict is Bool3.MAYBE:
            return Bool3.MAYBE
        return verdict is Bool3.TRUE

    def _isinstance_one(self, obj: Any, spec: Any) -> Bool3:
        if isinstance(spec, _BuiltinVal):
            name = spec.name
            if name == "int":
                return Bool3.of(isinstance(obj, (bool, int, BitVec)))
            if name == "bool":
                if isinstance(obj, bool):
                    return Bool3.TRUE
                if isinstance(obj, BitVec):
                    return Bool3.MAYBE
                return Bool3.FALSE
            if name == "tuple":
                return Bool3.of(isinstance(obj, tuple))
            if name == "list":
                return Bool3.of(isinstance(obj, list))
            if name == "str":
                return Bool3.of(isinstance(obj, str))
            if name == "float":
                return Bool3.of(isinstance(obj, float))
            if name == "set":
                return Bool3.of(isinstance(obj, (set, frozenset)))
            if name == "dict":
                return Bool3.of(isinstance(obj, dict))
            raise Unsupported(f"isinstance against builtin {name}")
        if isinstance(spec, ClassVal):
            if isinstance(obj, InstanceVal) and obj.cls is not None:
                names = {c.key for c in self.program.mro(obj.cls)}
                if spec.key in names:
                    return Bool3.TRUE
                # the instance's class chain may extend past resolvable files
                return Bool3.FALSE
            return Bool3.FALSE
        raise Unsupported("isinstance against unmodelled spec")

    def _call_concrete(self, fn: Callable[..., Any], args: list[Any], kwargs: dict[str, Any]) -> Any:
        plain_args = self._dewrap_ints(args)
        if not _is_plain(plain_args) or not _is_plain(list(kwargs.values())):
            raise Unsupported("abstract argument to a concrete builtin method")
        try:
            return fn(*plain_args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - mapped into the machine
            raise SymRaise(type(exc).__name__, str(exc)) from None

    # -- numpy scalar model ------------------------------------------------

    _NUMPY_DTYPES = frozenset(
        {"int64", "int32", "int16", "int8", "uint64", "uint32", "uint16", "uint8", "intp"}
    )

    def _numpy_attr(self, name: str) -> Any:
        if name in self._NUMPY_DTYPES or name in {
            "divmod", "where", "column_stack", "concatenate", "zeros", "arange",
            "array", "asarray", "full", "int_",
        }:
            return _NumpyFunc(name)
        raise Unsupported(f"numpy attribute {name} is not modelled")

    def _call_numpy(self, name: str, args: list[Any], kwargs: dict[str, Any]) -> Any:
        kwargs.pop("dtype", None)
        kwargs.pop("axis", None)
        if kwargs:
            raise Unsupported(f"np.{name} keyword(s) not modelled")
        if name in self._NUMPY_DTYPES or name in {"array", "asarray", "int_"}:
            (a,) = args or [0]
            return a
        if name == "divmod":
            a, b = args
            return (self._binary("FloorDiv", a, b), self._binary("Mod", a, b))
        if name == "where":
            cond, x, y = args
            return self._select(cond, x, y)
        if name == "column_stack":
            (seq,) = args
            return ArrayVal(list(self._iterate(seq)))
        if name == "concatenate":
            (seq,) = args
            cols: list[Any] = []
            for part in self._iterate(seq):
                if isinstance(part, ArrayVal):
                    cols.extend(part.cols)
                else:
                    cols.append(part)
            return ArrayVal(cols)
        if name == "zeros":
            (shape,) = args
            if isinstance(shape, tuple) and 0 in shape:
                return ArrayVal([])
            raise Unsupported("np.zeros of non-empty shape")
        if name == "arange":
            (n,) = self._dewrap_ints(args)
            if not isinstance(n, int) or n <= 0:
                raise Unsupported("np.arange needs a concrete positive stop")
            return BitVec.range(0, n - 1)
        if name == "full":
            shape, fill = args
            return fill
        raise Unsupported(f"np.{name} is not modelled")

    def _select(self, cond: Any, x: Any, y: Any) -> Any:
        if isinstance(cond, ArrayVal):
            n = len(cond.cols)
            xs = x.cols if isinstance(x, ArrayVal) else [x] * n
            ys = y.cols if isinstance(y, ArrayVal) else [y] * n
            if len(xs) != n or len(ys) != n:
                raise Unsupported("np.where column mismatch")
            return ArrayVal(
                [self._select(c, xv, yv) for c, xv, yv in zip(cond.cols, xs, ys)]
            )
        truth = self._truth(cond)
        if truth is Bool3.TRUE:
            return x
        if truth is Bool3.FALSE:
            return y
        return self._join_values(x, y)

    # -- attribute access --------------------------------------------------

    def _getattr(self, obj: Any, name: str) -> Any:
        self._tick()
        if isinstance(obj, InstanceVal):
            if name in obj.attrs:
                return obj.attrs[name]
            if obj.cls is not None:
                found = self._find_method(obj.cls, name)
                if found is not None:
                    fn, defining = found
                    if fn.is_property:
                        return self._call_func(
                            fn, [obj], {}, defining_class=defining
                        )
                    if fn.is_static:
                        return fn
                    return BoundMethod(fn, obj, defining)
                try:
                    return self._find_class_attr(obj.cls, name)
                except KeyError:
                    pass
            raise Unsupported(f"unresolvable attribute {name!r} on {obj!r}")
        if isinstance(obj, _SuperProxy):
            base_cls = obj.instance.cls if isinstance(obj.instance, InstanceVal) else None
            if base_cls is None:
                raise Unsupported("super() over a classless instance")
            found = self._find_method(base_cls, name, start_after=obj.after)
            if found is not None:
                fn, defining = found
                if fn.is_property:
                    return self._call_func(fn, [obj.instance], {}, defining_class=defining)
                return BoundMethod(fn, obj.instance, defining)
            try:
                return self._find_class_attr(base_cls, name, start_after=obj.after)
            except KeyError:
                raise Unsupported(f"unresolvable super().{name}") from None
        if isinstance(obj, _NumpyModule):
            return self._numpy_attr(name)
        if obj is OPAQUE:
            raise Unsupported(f"attribute {name!r} on opaque value")
        if isinstance(obj, ClassVal):
            found = self._find_method(obj, name)
            if found is not None:
                return found[0]
            try:
                return self._find_class_attr(obj, name)
            except KeyError:
                raise Unsupported(f"unresolvable class attribute {obj.name}.{name}") from None
        if isinstance(obj, _SAFE_CONCRETE) and not name.startswith("_"):
            try:
                attr = getattr(obj, name)
            except AttributeError:
                raise Unsupported(f"no attribute {name!r} on {type(obj).__name__}") from None
            if callable(attr):
                return _ConcreteCallable(attr)
            return attr
        raise Unsupported(f"attribute {name!r} on {type(obj).__name__}")

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt], env: dict[str, Any], frame: _Frame) -> _Flow:
        for stmt in stmts:
            flow = self._exec(stmt, env, frame)
            if flow.kind != _Flow.NORMAL:
                return flow
        return _NORMAL

    def _exec(self, stmt: ast.stmt, env: dict[str, Any], frame: _Frame) -> _Flow:
        self._tick()
        if isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, env, frame) if stmt.value else None
            return _Flow(_Flow.RETURN, value)
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, frame)
            for target in stmt.targets:
                self._assign(target, value, env, frame)
            return _NORMAL
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, env, frame), env, frame)
            return _NORMAL
        if isinstance(stmt, ast.AugAssign):
            current = self._eval_target(stmt.target, env, frame)
            value = self._binary(
                type(stmt.op).__name__, current, self._eval(stmt.value, env, frame)
            )
            self._assign(stmt.target, value, env, frame)
            return _NORMAL
        if isinstance(stmt, ast.Expr):
            if not isinstance(stmt.value, ast.Constant):  # skip docstrings
                self._eval(stmt.value, env, frame)
            return _NORMAL
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, env, frame)
        if isinstance(stmt, ast.For):
            return self._exec_for(stmt, env, frame)
        if isinstance(stmt, ast.While):
            return self._exec_while(stmt, env, frame)
        if isinstance(stmt, ast.Raise):
            return _Flow(_Flow.RAISE, self._raise_payload(stmt, env, frame))
        if isinstance(stmt, ast.Assert):
            truth = self._truth(self._eval(stmt.test, env, frame))
            if truth is Bool3.FALSE:
                return _Flow(_Flow.RAISE, ("AssertionError", ""))
            if truth is Bool3.MAYBE:
                frame.possible_raises.append("AssertionError")
            return _NORMAL
        if isinstance(stmt, ast.Pass):
            return _NORMAL
        if isinstance(stmt, ast.Break):
            return _Flow(_Flow.BREAK)
        if isinstance(stmt, ast.Continue):
            return _Flow(_Flow.CONTINUE)
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name.split(".")[0] == "numpy":
                    env[alias.asname or alias.name.split(".")[0]] = _NUMPY
                else:
                    env[alias.asname or alias.name.split(".")[0]] = OPAQUE
            return _NORMAL
        if isinstance(stmt, ast.ImportFrom):
            if stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    binding = _ImportBinding(stmt.module, alias.name)
                    env[alias.asname or alias.name] = self.program._resolve_import(binding)
            return _NORMAL
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return _NORMAL
        raise Unsupported(f"statement {type(stmt).__name__} is not modelled")

    def _raise_payload(self, stmt: ast.Raise, env: dict[str, Any], frame: _Frame) -> tuple[str, str]:
        if stmt.exc is None:
            return ("Exception", "bare re-raise")
        try:
            value = self._eval(stmt.exc, env, frame)
        except Unsupported:
            return ("Exception", "<unevaluated>")
        if isinstance(value, _ExceptionInstance):
            return (value.exc_name, value.detail)
        if isinstance(value, ClassVal):
            return (value.name, "")
        if isinstance(value, _BuiltinVal):
            return (value.name, "")
        return ("Exception", self._safe_str(value))

    def _exec_if(self, stmt: ast.If, env: dict[str, Any], frame: _Frame) -> _Flow:
        truth = self._truth(self._eval(stmt.test, env, frame))
        if truth is Bool3.TRUE:
            return self._exec_block(stmt.body, env, frame)
        if truth is Bool3.FALSE:
            return self._exec_block(stmt.orelse, env, frame)
        if frame.yields is not None:
            raise Unsupported("abstract branch inside a generator body")
        env_true = dict(env)
        env_false = dict(env)
        flow_true = self._exec_block(stmt.body, env_true, frame)
        flow_false = self._exec_block(stmt.orelse, env_false, frame)
        return self._merge_branches(env, (flow_true, env_true), (flow_false, env_false), frame)

    def _merge_branches(
        self,
        env: dict[str, Any],
        first: tuple[_Flow, dict[str, Any]],
        second: tuple[_Flow, dict[str, Any]],
        frame: _Frame,
    ) -> _Flow:
        flow_a, env_a = first
        flow_b, env_b = second
        # absorb raises: note them and continue along the other branch
        for flow, _branch_env in ((flow_a, env_a), (flow_b, env_b)):
            if flow.kind == _Flow.RAISE:
                payload = flow.value
                frame.possible_raises.append(
                    payload[0] if isinstance(payload, tuple) else str(payload)
                )
        if flow_a.kind == _Flow.RAISE and flow_b.kind == _Flow.RAISE:
            return flow_a
        if flow_a.kind == _Flow.RAISE:
            flow_a, env_a = _NORMAL if flow_b.kind == _Flow.NORMAL else flow_b, env_b
            env.clear()
            env.update(env_b)
            return flow_b if flow_b.kind != _Flow.NORMAL else _NORMAL
        if flow_b.kind == _Flow.RAISE:
            env.clear()
            env.update(env_a)
            return flow_a if flow_a.kind != _Flow.NORMAL else _NORMAL
        if flow_a.kind == _Flow.RETURN and flow_b.kind == _Flow.RETURN:
            return _Flow(_Flow.RETURN, self._join_values(flow_a.value, flow_b.value))
        if flow_a.kind == _Flow.RETURN and flow_b.kind == _Flow.NORMAL:
            frame.returns.append(flow_a.value)
            env.clear()
            env.update(env_b)
            return _NORMAL
        if flow_b.kind == _Flow.RETURN and flow_a.kind == _Flow.NORMAL:
            frame.returns.append(flow_b.value)
            env.clear()
            env.update(env_a)
            return _NORMAL
        if flow_a.kind == _Flow.NORMAL and flow_b.kind == _Flow.NORMAL:
            merged = self._join_envs(env_a, env_b)
            env.clear()
            env.update(merged)
            return _NORMAL
        raise Unsupported(
            f"cannot merge {flow_a.kind}/{flow_b.kind} branches of an abstract if"
        )

    def _exec_for(self, stmt: ast.For, env: dict[str, Any], frame: _Frame) -> _Flow:
        iterable = self._eval(stmt.iter, env, frame)
        broke = False
        for item in self._iterate(iterable):
            self._assign(stmt.target, item, env, frame)
            flow = self._exec_block(stmt.body, env, frame)
            if flow.kind == _Flow.BREAK:
                broke = True
                break
            if flow.kind == _Flow.CONTINUE:
                continue
            if flow.kind != _Flow.NORMAL:
                return flow
        if not broke and stmt.orelse:
            return self._exec_block(stmt.orelse, env, frame)
        return _NORMAL

    def _exec_while(self, stmt: ast.While, env: dict[str, Any], frame: _Frame) -> _Flow:
        while True:
            self._tick()
            truth = self._truth(self._eval(stmt.test, env, frame))
            if truth is Bool3.MAYBE:
                raise Unsupported("while loop with an abstract condition")
            if truth is Bool3.FALSE:
                break
            flow = self._exec_block(stmt.body, env, frame)
            if flow.kind == _Flow.BREAK:
                break
            if flow.kind == _Flow.CONTINUE:
                continue
            if flow.kind != _Flow.NORMAL:
                return flow
        return _NORMAL

    # -- assignment --------------------------------------------------------

    def _assign(self, target: ast.expr, value: Any, env: dict[str, Any], frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items = self._destructure(value, len(target.elts))
            for elt, item in zip(target.elts, items):
                self._assign(elt, item, env, frame)
            return
        if isinstance(target, ast.Attribute):
            obj = self._eval(target.value, env, frame)
            if isinstance(obj, InstanceVal):
                obj.attrs[target.attr] = value
                return
            raise Unsupported(f"attribute assignment on {type(obj).__name__}")
        if isinstance(target, ast.Subscript):
            obj = self._eval(target.value, env, frame)
            index = self._eval(target.slice, env, frame)
            if isinstance(obj, (list, dict)) and _is_plain(index):
                try:
                    obj[index] = value  # type: ignore[index]
                except Exception as exc:  # noqa: BLE001
                    raise SymRaise(type(exc).__name__, str(exc)) from None
                return
            raise Unsupported("abstract subscript assignment")
        raise Unsupported(f"assignment target {type(target).__name__}")

    def _eval_target(self, target: ast.expr, env: dict[str, Any], frame: _Frame) -> Any:
        return self._eval(target, env, frame)

    def _destructure(self, value: Any, n: int) -> list[Any]:
        if isinstance(value, (tuple, list)):
            if len(value) != n:
                raise SymRaise("ValueError", "unpacking length mismatch")
            return list(value)
        raise Unsupported(f"cannot destructure {type(value).__name__}")

    # -- iteration ---------------------------------------------------------

    def _iterate(self, value: Any) -> Iterator[Any]:
        if isinstance(value, (list, tuple, range, str)):
            return iter(value)
        if isinstance(value, (set, frozenset)):
            if _is_plain(value):
                try:
                    return iter(sorted(value))
                except TypeError:
                    return iter(value)
            raise Unsupported("iteration over an abstract set")
        if isinstance(value, dict):
            return iter(list(value))
        if isinstance(value, ArrayVal):
            return iter(value.cols)
        raise Unsupported(f"iteration over {type(value).__name__}")

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr, env: dict[str, Any], frame: _Frame) -> Any:
        self._tick()
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self._load_name(node.id, env, frame)
        if isinstance(node, ast.Attribute):
            return self._getattr(self._eval(node.value, env, frame), node.attr)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, frame)
            right = self._eval(node.right, env, frame)
            return self._binary(type(node.op).__name__, left, right)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node, env, frame)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node, env, frame)
        if isinstance(node, ast.Compare):
            return self._compare(node, env, frame)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, frame)
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(e, env, frame) for e in node.elts)
        if isinstance(node, ast.List):
            return [self._eval(e, env, frame) for e in node.elts]
        if isinstance(node, ast.Set):
            items = [self._eval(e, env, frame) for e in node.elts]
            if not _is_plain(items):
                raise Unsupported("set literal with abstract members")
            return set(items)
        if isinstance(node, ast.Dict):
            out: dict[Any, Any] = {}
            for k, v in zip(node.keys, node.values):
                if k is None:
                    raise Unsupported("dict ** expansion")
                key = self._eval(k, env, frame)
                if not _is_plain(key):
                    raise Unsupported("abstract dict key")
                out[key] = self._eval(v, env, frame)
            return out
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env, frame)
        if isinstance(node, ast.Slice):
            lower = self._eval(node.lower, env, frame) if node.lower else None
            upper = self._eval(node.upper, env, frame) if node.upper else None
            step = self._eval(node.step, env, frame) if node.step else None
            return slice(lower, upper, step)
        if isinstance(node, ast.IfExp):
            truth = self._truth(self._eval(node.test, env, frame))
            if truth is Bool3.TRUE:
                return self._eval(node.body, env, frame)
            if truth is Bool3.FALSE:
                return self._eval(node.orelse, env, frame)
            return self._join_values(
                self._eval(node.body, env, frame), self._eval(node.orelse, env, frame)
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._comprehension(node, env, frame)
        if isinstance(node, ast.JoinedStr):
            parts = []
            for piece in node.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                elif isinstance(piece, ast.FormattedValue):
                    parts.append(self._safe_str(self._eval(piece.value, env, frame)))
            return "".join(parts)
        if isinstance(node, ast.Yield):
            if frame.yields is None:
                raise Unsupported("yield outside a generator frame")
            frame.yields.append(
                self._eval(node.value, env, frame) if node.value else None
            )
            return None
        if isinstance(node, ast.YieldFrom):
            if frame.yields is None:
                raise Unsupported("yield from outside a generator frame")
            frame.yields.extend(self._iterate(self._eval(node.value, env, frame)))
            return None
        if isinstance(node, ast.Starred):
            raise Unsupported("starred expression")
        raise Unsupported(f"expression {type(node).__name__} is not modelled")

    def _load_name(self, name: str, env: dict[str, Any], frame: _Frame) -> Any:
        if name in env:
            return env[name]
        try:
            value = self.program.lookup(frame.module, name)
        except KeyError:
            value = None
        else:
            if isinstance(value, _ExprBinding):
                return self._eval(value.expr, {}, _Frame(value.module, None, None))
            return value
        if name in _BUILTIN_NAMES:
            return _BuiltinVal(name)
        if name in _EXCEPTION_NAMES:
            return _BuiltinVal(name)
        if name == "True":
            return True
        if name == "False":
            return False
        if name == "None":
            return None
        raise Unsupported(f"unresolvable name {name!r} in {frame.module}")

    def _eval_call(self, node: ast.Call, env: dict[str, Any], frame: _Frame) -> Any:
        fn = self._eval(node.func, env, frame)
        args = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                raise Unsupported("*args call expansion")
            args.append(self._eval(arg, env, frame))
        kwargs: dict[str, Any] = {}
        for kw in node.keywords:
            if kw.arg is None:
                raise Unsupported("**kwargs call expansion")
            kwargs[kw.arg] = self._eval(kw.value, env, frame)
        if isinstance(fn, _BuiltinVal) and fn.name in _EXCEPTION_NAMES:
            detail = ", ".join(self._safe_str(a) for a in args)
            return _ExceptionInstance(fn.name, detail)
        return self._call(fn, args, kwargs)

    def _comprehension(
        self,
        node: ast.ListComp | ast.GeneratorExp | ast.SetComp,
        env: dict[str, Any],
        frame: _Frame,
    ) -> Any:
        results: list[Any] = []

        def run(generators: list[ast.comprehension], scope: dict[str, Any]) -> None:
            if not generators:
                results.append(self._eval(node.elt, scope, frame))
                return
            gen = generators[0]
            if gen.is_async:
                raise Unsupported("async comprehension")
            for item in self._iterate(self._eval(gen.iter, scope, frame)):
                inner = dict(scope)
                self._assign(gen.target, item, inner, frame)
                keep = True
                for cond in gen.ifs:
                    truth = self._truth(self._eval(cond, inner, frame))
                    if truth is Bool3.MAYBE:
                        raise Unsupported("abstract comprehension filter")
                    if truth is Bool3.FALSE:
                        keep = False
                        break
                if keep:
                    run(generators[1:], inner)

        run(node.generators, dict(env))
        if isinstance(node, ast.SetComp):
            if not _is_plain(results):
                raise Unsupported("abstract set comprehension")
            return set(results)
        return results

    def _subscript(self, node: ast.Subscript, env: dict[str, Any], frame: _Frame) -> Any:
        obj = self._eval(node.value, env, frame)
        index = self._eval(node.slice, env, frame)
        if isinstance(obj, BitVec):
            # array-as-scalar: any indexing/reshaping preserves element values
            return obj
        if isinstance(obj, ArrayVal):
            return obj
        if isinstance(obj, (list, tuple, str)):
            if isinstance(index, BitVec) and index.is_concrete:
                index = index.lo
            if isinstance(index, (int, slice)) and _is_plain(index):
                try:
                    return obj[index]
                except Exception as exc:  # noqa: BLE001
                    raise SymRaise(type(exc).__name__, str(exc)) from None
            if isinstance(index, BitVec):
                joined: Any = None
                for member in index.members():
                    if not 0 <= member < len(obj):
                        raise SymRaise("IndexError", "abstract index out of range")
                    joined = obj[member] if joined is None else self._join_values(joined, obj[member])
                if joined is None:
                    raise Unsupported("empty abstract index")
                return joined
            raise Unsupported("unmodelled sequence index")
        if isinstance(obj, dict):
            if _is_plain(index):
                try:
                    return obj[index]
                except KeyError:
                    raise SymRaise("KeyError", self._safe_str(index)) from None
            raise Unsupported("abstract dict key lookup")
        raise Unsupported(f"subscript on {type(obj).__name__}")

    def _unary(self, node: ast.UnaryOp, env: dict[str, Any], frame: _Frame) -> Any:
        operand = self._eval(node.operand, env, frame)
        if isinstance(node.op, ast.Not):
            truth = self._truth(operand)
            if truth is Bool3.MAYBE:
                return Bool3.MAYBE
            return truth is Bool3.FALSE
        if isinstance(node.op, ast.USub):
            if isinstance(operand, (bool, int, float)):
                return -operand
            return _lift(operand).neg()
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Invert):
            if isinstance(operand, (bool, int)):
                return ~operand
            return _lift(operand).invert()
        raise Unsupported("unary operator not modelled")

    def _boolop(self, node: ast.BoolOp, env: dict[str, Any], frame: _Frame) -> Any:
        is_and = isinstance(node.op, ast.And)
        result: Any = None
        pending = Bool3.TRUE if is_and else Bool3.FALSE
        for i, value_node in enumerate(node.values):
            value = self._eval(value_node, env, frame)
            truth = self._truth(value)
            if truth is Bool3.MAYBE:
                # fold the remaining operands three-valued
                acc = Bool3.MAYBE
                for rest in node.values[i + 1:]:
                    rest_truth = self._truth(self._eval(rest, env, frame))
                    acc = acc.and3(rest_truth) if is_and else acc.or3(rest_truth)
                return pending.and3(acc) if is_and else pending.or3(acc)
            if is_and and truth is Bool3.FALSE:
                return value
            if not is_and and truth is Bool3.TRUE:
                return value
            result = value
        return result

    def _compare(self, node: ast.Compare, env: dict[str, Any], frame: _Frame) -> Any:
        left = self._eval(node.left, env, frame)
        verdict: Any = True
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator, env, frame)
            step = self._compare_one(op, left, right)
            if step is False or step is Bool3.FALSE:
                return False if isinstance(step, bool) and verdict is True else step
            if isinstance(verdict, Bool3) or isinstance(step, Bool3):
                verdict = (
                    verdict if isinstance(verdict, Bool3) else Bool3.of(bool(verdict))
                ).and3(step if isinstance(step, Bool3) else Bool3.of(bool(step)))
            left = right
        return verdict

    def _compare_one(self, op: ast.cmpop, left: Any, right: Any) -> Any:
        # numpy broadcast: comparing an array yields an elementwise mask
        if isinstance(left, ArrayVal) or isinstance(right, ArrayVal):
            lc = left.cols if isinstance(left, ArrayVal) else None
            rc = right.cols if isinstance(right, ArrayVal) else None
            n = len(lc) if lc is not None else len(rc or [])
            ls = lc if lc is not None else [left] * n
            rs = rc if rc is not None else [right] * n
            if len(ls) != len(rs):
                raise Unsupported("array comparison length mismatch")
            return ArrayVal([self._compare_one(op, a, b) for a, b in zip(ls, rs)])
        if isinstance(op, (ast.Is, ast.IsNot)):
            if right is None or left is None:
                same = left is right
            elif _is_plain(left) and _is_plain(right):
                same = left is right
            elif isinstance(left, (InstanceVal, ClassVal)) or isinstance(right, (InstanceVal, ClassVal)):
                same = left is right
            elif isinstance(left, BitVec) or isinstance(right, BitVec):
                # an abstract int is never identical to None; other identity
                # questions on abstract values are out of scope
                if right is None or left is None:
                    same = False
                else:
                    raise Unsupported("identity test on abstract values")
            else:
                same = left is right
            return same if isinstance(op, ast.Is) else not same
        if isinstance(op, (ast.In, ast.NotIn)):
            verdict = self._membership(left, right)
            if isinstance(op, ast.NotIn):
                if isinstance(verdict, Bool3):
                    return verdict.negate()
                return not verdict
            return verdict
        if isinstance(op, (ast.Eq, ast.NotEq)):
            verdict = self._equal(left, right)
            if isinstance(op, ast.NotEq):
                if isinstance(verdict, Bool3):
                    return verdict.negate()
                return not verdict
            return verdict
        # ordering comparisons
        if isinstance(left, (bool, int)) and isinstance(right, (bool, int)):
            if isinstance(op, ast.Lt):
                return left < right
            if isinstance(op, ast.LtE):
                return left <= right
            if isinstance(op, ast.Gt):
                return left > right
            if isinstance(op, ast.GtE):
                return left >= right
        if isinstance(left, (str, float)) and isinstance(right, (str, float)):
            if isinstance(op, ast.Lt):
                return left < right  # type: ignore[operator]
            if isinstance(op, ast.LtE):
                return left <= right  # type: ignore[operator]
            if isinstance(op, ast.Gt):
                return left > right  # type: ignore[operator]
            if isinstance(op, ast.GtE):
                return left >= right  # type: ignore[operator]
        lv, rv = _lift(left), _lift(right)
        if isinstance(op, ast.Lt):
            return lv.lt(rv)
        if isinstance(op, ast.LtE):
            return lv.le(rv)
        if isinstance(op, ast.Gt):
            return rv.lt(lv)
        if isinstance(op, ast.GtE):
            return rv.le(lv)
        raise Unsupported("comparison operator not modelled")

    def _membership(self, item: Any, container: Any) -> Any:
        if isinstance(container, ArrayVal):
            container = container.cols
        if isinstance(container, (set, frozenset, dict)) and _is_plain(item):
            return item in container
        if isinstance(container, (list, tuple, set, frozenset)):
            verdict: Any = False
            for member in container:
                step = self._equal(item, member)
                if step is True or step is Bool3.TRUE:
                    return True
                if isinstance(step, Bool3):
                    verdict = Bool3.MAYBE
            return verdict
        if isinstance(container, str) and isinstance(item, str):
            return item in container
        raise Unsupported(f"membership in {type(container).__name__}")

    def _equal(self, left: Any, right: Any) -> Any:
        if isinstance(left, (BitVec,)) or isinstance(right, (BitVec,)):
            if isinstance(left, (bool, int, BitVec)) and isinstance(right, (bool, int, BitVec)):
                verdict = _lift(left).eq(_lift(right))
                if verdict is Bool3.TRUE:
                    return True
                if verdict is Bool3.FALSE:
                    return False
                return Bool3.MAYBE
            return False  # abstract int vs non-int structure
        if isinstance(left, tuple) and isinstance(right, tuple):
            if len(left) != len(right):
                return False
            verdict = True
            for a, b in zip(left, right):
                step = self._equal(a, b)
                if step is False:
                    return False
                if isinstance(step, Bool3):
                    if step is Bool3.FALSE:
                        return False
                    verdict = Bool3.MAYBE
            return verdict
        if _is_plain(left) and _is_plain(right):
            return left == right
        if type(left) is not type(right):
            return False
        raise Unsupported("equality of unmodelled values")

    # -- binary dispatch ---------------------------------------------------

    def _binary(self, opname: str, left: Any, right: Any) -> Any:
        self._tick()
        # array broadcast
        if isinstance(left, ArrayVal) or isinstance(right, ArrayVal):
            lc = left.cols if isinstance(left, ArrayVal) else None
            rc = right.cols if isinstance(right, ArrayVal) else None
            n = len(lc) if lc is not None else len(rc or [])
            lcols = lc if lc is not None else [left] * n
            rcols = rc if rc is not None else [right] * n
            if len(lcols) != len(rcols):
                raise Unsupported("array column mismatch")
            return ArrayVal([self._binary(opname, a, b) for a, b in zip(lcols, rcols)])
        # list semantics: concrete python lists behave like python, lists
        # holding abstract values behave element-wise (numpy-land)
        if isinstance(left, list) or isinstance(right, list):
            return self._binary_list(opname, left, right)
        # numpy boolean masks combine with &/|/^ — three-valued here
        if isinstance(left, Bool3) or isinstance(right, Bool3):
            lt = left if isinstance(left, Bool3) else Bool3.of(bool(left))
            rt = right if isinstance(right, Bool3) else Bool3.of(bool(right))
            if opname == "BitAnd":
                return lt.and3(rt)
            if opname == "BitOr":
                return lt.or3(rt)
            if opname == "BitXor":
                eq = lt.and3(rt).or3(lt.negate().and3(rt.negate()))
                return eq.negate()
            raise Unsupported(f"binary {opname} on three-valued booleans")
        if isinstance(left, (bool, int)) and isinstance(right, (bool, int)):
            return self._binary_concrete(opname, left, right)
        if isinstance(left, (str, tuple)) and isinstance(right, (str, tuple)) and opname == "Add":
            return left + right  # type: ignore[operator]
        if isinstance(left, str) and opname == "Mod":
            raise Unsupported("%-formatting")
        if isinstance(left, float) or isinstance(right, float):
            if isinstance(left, (bool, int, float)) and isinstance(right, (bool, int, float)):
                return self._binary_concrete(opname, left, right)
            raise Unsupported("abstract float arithmetic")
        lv, rv = _lift(left), _lift(right)
        if opname == "Add":
            return lv.add(rv)
        if opname == "Sub":
            return lv.sub(rv)
        if opname == "Mult":
            return lv.mul(rv)
        if opname == "FloorDiv":
            return lv.floordiv(rv)
        if opname == "Mod":
            return lv.mod(rv)
        if opname == "BitAnd":
            return lv.and_(rv)
        if opname == "BitOr":
            return lv.or_(rv)
        if opname == "BitXor":
            return lv.xor(rv)
        if opname == "LShift":
            return lv.lshift(rv)
        if opname == "RShift":
            return lv.rshift(rv)
        if opname == "Pow":
            if rv.is_concrete and 0 <= rv.lo <= 8:
                out = BitVec.concrete(1)
                for _ in range(rv.lo):
                    out = out.mul(lv)
                return out
            raise Unsupported("abstract exponent")
        raise Unsupported(f"binary {opname} on abstract values")

    def _binary_list(self, opname: str, left: Any, right: Any) -> Any:
        left_list = isinstance(left, list)
        right_list = isinstance(right, list)
        both_plain = _is_plain(left) and _is_plain(right)
        if both_plain and left_list and right_list and opname == "Add":
            return list(left) + list(right)
        if both_plain and opname == "Mult" and (
            (left_list and isinstance(right, int)) or (right_list and isinstance(left, int))
        ):
            return left * right  # type: ignore[operator]
        # element-wise (numpy-land) semantics
        lcols = left if left_list else None
        rcols = right if right_list else None
        n = len(lcols) if lcols is not None else len(rcols or [])
        ls = lcols if lcols is not None else [left] * n
        rs = rcols if rcols is not None else [right] * n
        if len(ls) != len(rs):
            raise Unsupported("list broadcast length mismatch")
        return [self._binary(opname, a, b) for a, b in zip(ls, rs)]

    def _binary_concrete(self, opname: str, left: Any, right: Any) -> Any:
        try:
            if opname == "Add":
                return left + right
            if opname == "Sub":
                return left - right
            if opname == "Mult":
                return left * right
            if opname == "FloorDiv":
                return left // right
            if opname == "Div":
                return left / right
            if opname == "Mod":
                return left % right
            if opname == "Pow":
                if isinstance(right, int) and right > 64:
                    raise Unsupported("huge exponent")
                return left ** right
            if opname == "BitAnd":
                return left & right
            if opname == "BitOr":
                return left | right
            if opname == "BitXor":
                return left ^ right
            if opname == "LShift":
                if right > 1 << 12:
                    raise Unsupported("huge shift")
                return left << right
            if opname == "RShift":
                return left >> right
        except Unsupported:
            raise
        except Exception as exc:  # noqa: BLE001 - mapped into the machine
            raise SymRaise(type(exc).__name__, str(exc)) from None
        raise Unsupported(f"binary {opname} is not modelled")

    # -- truth, joins ------------------------------------------------------

    def _truth(self, value: Any) -> Bool3:
        if isinstance(value, Bool3):
            return value
        if isinstance(value, bool):
            return Bool3.of(value)
        if isinstance(value, int):
            return Bool3.of(value != 0)
        if isinstance(value, BitVec):
            verdict = value.eq(BitVec.concrete(0))
            return verdict.negate()
        if value is None:
            return Bool3.FALSE
        if isinstance(value, (str, list, tuple, set, frozenset, dict)):
            return Bool3.of(bool(value))
        if isinstance(value, (InstanceVal, ClassVal, FuncVal, BoundMethod)):
            return Bool3.TRUE
        raise Unsupported(f"truthiness of {type(value).__name__}")

    def _join_values(self, a: Any, b: Any) -> Any:
        if a is b:
            return a
        if isinstance(a, (bool, int, BitVec)) and isinstance(b, (bool, int, BitVec)):
            if isinstance(a, (bool, int)) and isinstance(b, (bool, int)) and a == b:
                return a
            return _lift(a).join(_lift(b))
        if isinstance(a, Bool3) or isinstance(b, Bool3):
            ta = a if isinstance(a, Bool3) else Bool3.of(bool(a))
            tb = b if isinstance(b, Bool3) else Bool3.of(bool(b))
            return ta.join(tb)
        if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
            return tuple(self._join_values(x, y) for x, y in zip(a, b))
        if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
            return [self._join_values(x, y) for x, y in zip(a, b)]
        if isinstance(a, ArrayVal) and isinstance(b, ArrayVal) and len(a.cols) == len(b.cols):
            return ArrayVal([self._join_values(x, y) for x, y in zip(a.cols, b.cols)])
        if a is None and b is None:
            return None
        if _is_plain(a) and _is_plain(b) and a == b:
            return a
        raise Unsupported(
            f"cannot join {type(a).__name__} with {type(b).__name__}"
        )

    def _join_envs(self, env_a: dict[str, Any], env_b: dict[str, Any]) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for key in env_a:
            if key in env_b:
                out[key] = self._join_values(env_a[key], env_b[key])
        return out

    def _safe_str(self, value: Any) -> str:
        if value is None or isinstance(value, (bool, int, float, str)):
            return str(value)
        if isinstance(value, BitVec):
            return repr(value)
        if isinstance(value, tuple):
            return "(" + ", ".join(self._safe_str(v) for v in value) + ")"
        return f"<{type(value).__name__}>"


@dataclass
class _ExceptionInstance:
    exc_name: str
    detail: str


# ---------------------------------------------------------------------------
# facade
# ---------------------------------------------------------------------------


class Evaluator:
    """High-level entry point used by the HB8xx rules and the prover."""

    def __init__(self, program: Program, max_steps: int = 300_000) -> None:
        self.program = program
        self.machine = Machine(program, max_steps)

    # -- resolution --------------------------------------------------------

    def class_named(self, name: str) -> ClassVal | None:
        return self.program.class_named(name)

    def function_at(self, module: str, name: str) -> FuncVal | None:
        try:
            value = self.program.lookup(module, name)
        except KeyError:
            return None
        return value if isinstance(value, FuncVal) else None

    # -- execution ---------------------------------------------------------

    def instantiate(
        self, cls: ClassVal, args: list[Any], kwargs: dict[str, Any] | None = None
    ) -> InstanceVal:
        return self.machine.instantiate(cls, args, kwargs)

    def call_method(self, instance: Any, name: str, args: list[Any]) -> Any:
        method = self.machine.getattr_value(instance, name)
        return self.machine.call(method, args)

    def get_attr(self, instance: Any, name: str) -> Any:
        return self.machine.getattr_value(instance, name)

    def call_function(self, fn: FuncVal, args: list[Any]) -> Any:
        return self.machine.call(fn, args)

    # -- reflection --------------------------------------------------------

    def reflect(self, obj: Any) -> Any:
        """Convert a live runtime object into a symbolic value.

        Integers, strings, tuples and friends map to themselves; objects
        whose class is defined in the linted sources become
        :class:`InstanceVal` with reflected attributes (unconvertible
        attributes become :data:`OPAQUE`, so touching them raises
        :class:`Unsupported` instead of producing nonsense).
        """
        return self._reflect(obj, depth=0)

    def _reflect(self, obj: Any, depth: int) -> Any:
        if depth > 6:
            return OPAQUE
        if obj is None or isinstance(obj, (bool, str, float)):
            return obj
        if isinstance(obj, int):
            return int(obj)  # collapses numpy scalar ints too
        if isinstance(obj, tuple):
            return tuple(self._reflect(v, depth + 1) for v in obj)
        if isinstance(obj, list):
            return [self._reflect(v, depth + 1) for v in obj]
        if isinstance(obj, (set, frozenset)):
            return obj if _is_plain(obj) else OPAQUE
        if isinstance(obj, dict):
            return obj if _is_plain(obj) else OPAQUE
        cls = self._class_for_type(type(obj))
        if cls is None:
            return OPAQUE
        try:
            attrs = vars(obj)
        except TypeError:
            return OPAQUE
        reflected = {k: self._reflect(v, depth + 1) for k, v in attrs.items()}
        return InstanceVal(cls, reflected)

    def _class_for_type(self, tp: type) -> ClassVal | None:
        module = getattr(tp, "__module__", "")
        name = getattr(tp, "__qualname__", getattr(tp, "__name__", ""))
        if "." in name:  # nested classes are out of scope
            return None
        binding = None
        if module in self.program.modules:
            table_value: Any
            try:
                table_value = self.program.lookup(module, name)
            except KeyError:
                table_value = None
            if isinstance(table_value, ClassVal):
                binding = table_value
        if binding is None:
            binding = self.program.class_named(name)
        return binding
