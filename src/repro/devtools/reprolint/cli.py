"""Argument wiring and rendering for ``hyperbutterfly lint``.

Exit codes are CI contracts:

* ``0`` — no active findings (suppressed/baselined findings are fine);
* ``1`` — at least one active finding;
* ``2`` — the linter itself failed (bad path, broken baseline, rule
  self-test failure) — distinct so CI can tell "code is dirty" from
  "linter is broken".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.errors import ReproError

from repro.devtools.reprolint.baseline import DEFAULT_BASELINE, write_baseline
from repro.devtools.reprolint.engine import (
    LintReport,
    SelfTestError,
    lint_paths,
    self_test,
    self_test_rule,
)
from repro.devtools.reprolint.registry import all_rules
from repro.devtools.reprolint.rules.base import Rule

__all__ = ["configure_parser", "run"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add ``lint`` arguments onto an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help=(
            f"ignore findings recorded in a baseline file "
            f"(default path when given bare: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with the current active findings",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run every rule against its built-in fixtures and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _render_text(report: LintReport) -> str:
    lines = [f.render() for f in report.findings]
    active = report.active
    summary = (
        f"checked {report.checked_files} files with {report.rules_run} rules: "
        f"{len(active)} finding(s)"
    )
    waived = len(report.findings) - len(active)
    if waived:
        summary += f" ({waived} suppressed/baselined)"
    lines.append(summary)
    return "\n".join(lines)


def _rule_self_test_status(rule: Rule) -> str:
    try:
        self_test_rule(rule)
    except SelfTestError as exc:
        return f"FAIL ({exc})"
    return "ok"


def _render_rule_table() -> str:
    """Rules grouped by block, each with its fixture self-test status."""
    by_group: dict[str, list[Rule]] = {}
    for rule in all_rules():
        by_group.setdefault(rule.group, []).append(rule)
    lines: list[str] = []
    for group in sorted(by_group, key=lambda g: by_group[g][0].rule_id):
        block = by_group[group][0].rule_id[:3] + "xx"
        lines.append(f"{block} {group}")
        for rule in by_group[group]:
            status = _rule_self_test_status(rule)
            lines.append(f"  {rule.rule_id:<7} [{status:>4}] {rule.title}")
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    try:
        if args.list_rules:
            print(_render_rule_table())
            return 0
        if args.self_test:
            count = self_test()
            print(f"self-test passed for {count} rules")
            return 0
        if args.update_baseline:
            # don't pre-load the file we are about to replace (it may not
            # exist yet); record the current findings from scratch
            report = lint_paths(args.paths)
            target = args.baseline or DEFAULT_BASELINE
            count = write_baseline(target, report.findings)
            print(f"wrote {count} fingerprint(s) to {target}")
            return 0
        report = lint_paths(args.paths, baseline_path=args.baseline)
        if args.format == "json":
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(_render_text(report))
        return report.exit_code
    except ReproError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.devtools.reprolint``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="paper-invariant lint engine for the repro codebase",
    )
    configure_parser(parser)
    return run(parser.parse_args(list(argv) if argv is not None else None))
