"""Finding records emitted by lint rules.

A :class:`Finding` is one diagnostic anchored to a file and line.  Its
*fingerprint* deliberately hashes the rule id, the path, and the stripped
source line text — **not** the line number — so a baseline entry survives
unrelated edits above the finding but is invalidated the moment the
offending line itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class Severity(str, Enum):
    """How a finding should gate CI."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    #: stripped text of the offending source line (fingerprint input)
    line_text: str = ""
    #: set by the engine when an inline comment suppresses this finding
    suppressed: bool = field(default=False, compare=False)
    #: set by the engine when a baseline entry grandfathers this finding
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line-number independent)."""
        payload = f"{self.rule_id}|{self.path}|{self.line_text.strip()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def active(self) -> bool:
        """Whether this finding should count toward a non-zero exit."""
        return not (self.suppressed or self.baselined)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (schema asserted by the CLI tests)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        """One-line ``path:line:col: RULE message`` text rendering."""
        flags = ""
        if self.suppressed:
            flags = " [suppressed]"
        elif self.baselined:
            flags = " [baselined]"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}{flags}"
        )
