"""Finding records emitted by lint rules.

A :class:`Finding` is one diagnostic anchored to a file and line.  Its
*fingerprint* deliberately hashes the rule id, the path, and the stripped
source line text — **not** the line number — so a baseline entry survives
unrelated edits above the finding but is invalidated the moment the
offending line itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class Severity(str, Enum):
    """How a finding should gate CI."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    #: stripped text of the offending source line (fingerprint input)
    line_text: str = ""
    #: set by the engine when an inline comment suppresses this finding
    suppressed: bool = field(default=False, compare=False)
    #: set by the engine when a baseline entry grandfathers this finding
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line-number independent)."""
        payload = f"{self.rule_id}|{self.path}|{self.line_text.strip()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def active(self) -> bool:
        """Whether this finding should count toward a non-zero exit."""
        return not (self.suppressed or self.baselined)

    def sort_key(self) -> tuple[str, int, int, str, str]:
        """Total order over findings: position, then rule id, then message.

        Every field that can differ between two findings participates, so
        report order — and therefore the JSON report — is byte-stable
        across runs even when one line triggers several rules at the same
        column.
        """
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (schema asserted by the CLI tests)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        """One-line ``path:line:col: RULE message`` text rendering."""
        flags = ""
        if self.suppressed:
            flags = " [suppressed]"
        elif self.baselined:
            flags = " [baselined]"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}{flags}"
        )

    def render_github(self) -> str:
        """GitHub Actions workflow-command rendering (PR annotations).

        ``::error file=...,line=...,col=...,title=RULE::message`` — the
        runner surfaces these as inline annotations on the diff.
        """
        level = "error" if self.severity is Severity.ERROR else "warning"
        props = (
            f"file={_gh_property(self.path)},line={self.line},"
            f"col={self.col + 1},title={_gh_property(self.rule_id)}"
        )
        return f"::{level} {props}::{_gh_data(self.message)}"


def _gh_data(text: str) -> str:
    """Escape workflow-command message data (order matters: % first)."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _gh_property(text: str) -> str:
    """Escape workflow-command property values (also , and :)."""
    return _gh_data(text).replace(":", "%3A").replace(",", "%2C")
