"""Whole-program views: import graph, symbol tables, conservative call graph.

PR 3's rules judge one file at a time, so an unseeded RNG constructed in
``simulation/`` and consumed in ``faults/campaigns.py`` — or ``topologies/``
growing an import on ``simulation/`` — is invisible to them.  This module
builds the cross-file structures the HB4xx (architecture) and HB5xx
(determinism taint) rule blocks need:

* a **module-level import graph** over every linted file, with each edge
  classified as *eager* (executed at import time), *deferred* (inside a
  function body) or *type-checking-only* (under ``if TYPE_CHECKING:``);
* **per-module symbol tables** — top-level definitions, ``__all__``
  declarations, and import aliases (so re-exports through package
  ``__init__`` files resolve back to the defining module);
* a **conservative call graph** keyed by dotted function name
  (``repro.faults.model.random_node_faults``,
  ``repro.core.resilient.ResilientRouter.route``).  Only calls the AST can
  resolve statically are recorded (local names, imported names,
  ``self``-method calls); everything else is dropped, so reachability
  queries under-approximate call edges but every recorded edge is real.

The graph is built lazily by :class:`~repro.devtools.reprolint.context.
ProjectContext` the first time a project rule asks for it, so per-file
rules pay nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.devtools.reprolint.context import FileContext
from repro.devtools.reprolint.rules.base import ImportMap

__all__ = [
    "ImportEdge",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "LAYERS",
    "layer_of",
    "layer_title",
]

#: architecture layer of each first-level package under ``repro`` — the
#: DAG ``_bits/errors ← topologies/cayley ← routing/core/embeddings ←
#: fastgraph/analysis ← faults/simulation ← cli/viz`` from
#: ``docs/architecture.md``; higher layers may import lower ones eagerly,
#: never the reverse (upward needs a deferred import or a redesign).
LAYERS: dict[str, int] = {
    "_bits": 0,
    "errors": 0,
    "topologies": 1,
    "cayley": 1,
    "routing": 2,
    "core": 2,
    "embeddings": 2,
    "fastgraph": 3,
    "analysis": 3,
    "faults": 4,
    "simulation": 4,
    "io": 5,
    "viz": 5,
    "cli": 5,
    "__main__": 5,
    "devtools": 5,
}

_LAYER_TITLES = {
    0: "_bits/errors",
    1: "topologies/cayley",
    2: "routing/core/embeddings",
    3: "fastgraph/analysis",
    4: "faults/simulation",
    5: "cli/viz",
}

#: modules whose functions count as CLI entry points for liveness/taint
_ENTRYPOINT_SUFFIXES = ("cli", "__main__")


def layer_of(module: str) -> int | None:
    """Layer index of a dotted ``repro`` module, or ``None`` if unmapped."""
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return 5  # the root facade re-exports the public API
    return LAYERS.get(parts[1])


def layer_title(layer: int) -> str:
    """Human name of a layer index (for findings)."""
    return _LAYER_TITLES.get(layer, f"layer {layer}")


@dataclass(frozen=True)
class ImportEdge:
    """One ``import`` statement, resolved to an in-project target module."""

    src: str
    dst: str
    lineno: int
    #: executed when ``src`` is imported (module top level, incl. try/if)
    eager: bool
    #: guarded by ``if TYPE_CHECKING:`` — never executed at runtime
    type_checking: bool


@dataclass
class FunctionInfo:
    """One function or method, with its statically-resolvable call sites."""

    dotted: str  # e.g. repro.faults.model.random_node_faults
    module: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: resolved dotted callee names with call-site line numbers
    calls: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Symbol table of one linted module."""

    name: str
    ctx: FileContext
    #: names declared in ``__all__`` (None when no ``__all__`` exists)
    all_names: list[str] | None = None
    #: top-level *definitions* (def/class/assignment) — not import aliases
    public_defs: dict[str, int] = field(default_factory=dict)
    #: top-level import aliases: local name -> canonical dotted target
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: functions and methods defined here, keyed by local qualname
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def is_entrypoint(self) -> bool:
        return self.name.split(".")[-1] in _ENTRYPOINT_SUFFIXES


def _declared_all(tree: ast.Module) -> list[str] | None:
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    return [
                        el.value
                        for el in value.elts
                        if isinstance(el, ast.Constant) and isinstance(el.value, str)
                    ]
    return None


def _is_type_checking_test(test: ast.expr) -> bool:
    name = None
    if isinstance(test, ast.Name):
        name = test.id
    elif isinstance(test, ast.Attribute):
        name = test.attr
    return name == "TYPE_CHECKING"


def _resolve_relative(module: str, raw: str | None, level: int) -> str | None:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if level == 0:
        return raw
    # package of `module`: drop `level` trailing components (a module's own
    # package is one level up; __init__ module names already lack it)
    base_parts = module.split(".")[:-level]
    if not base_parts:
        return None
    prefix = ".".join(base_parts)
    return f"{prefix}.{raw}" if raw else prefix


class ProjectGraph:
    """Import graph + symbol tables + call graph over the linted files."""

    def __init__(self, files: Iterable[FileContext]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.edges: list[ImportEdge] = []
        self.functions: dict[str, FunctionInfo] = {}
        self._callers: dict[str, list[tuple[str, int]]] = {}
        for ctx in files:
            if ctx.module_name:
                self.modules[ctx.module_name] = ModuleInfo(ctx.module_name, ctx)
        for info in self.modules.values():
            self._scan_module(info)
        self._build_call_graph()

    # -- construction -------------------------------------------------------

    def _known_module(self, dotted: str | None) -> str | None:
        """``dotted`` itself if it names a linted module, else ``None``."""
        if dotted is not None and dotted in self.modules:
            return dotted
        return None

    def _scan_module(self, info: ModuleInfo) -> None:
        tree = info.ctx.tree
        info.all_names = _declared_all(tree)
        self._scan_imports(info, tree.body, eager=True, type_checking=False)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.public_defs.setdefault(node.name, node.lineno)
                self._add_function(info, node, qual=node.name)
            elif isinstance(node, ast.ClassDef):
                info.public_defs.setdefault(node.name, node.lineno)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(
                            info, item, qual=f"{node.name}.{item.name}"
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.public_defs.setdefault(target.id, node.lineno)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                info.public_defs.setdefault(node.target.id, node.lineno)

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        qual: str,
    ) -> None:
        fn = FunctionInfo(
            dotted=f"{info.name}.{qual}",
            module=info.name,
            lineno=node.lineno,
            node=node,
        )
        info.functions[qual] = fn
        self.functions[fn.dotted] = fn

    def _scan_imports(
        self,
        info: ModuleInfo,
        body: Iterable[ast.stmt],
        *,
        eager: bool,
        type_checking: bool,
    ) -> None:
        """Record in-project import edges, classifying execution context."""
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    dst = self._known_module(alias.name)
                    if dst is not None:
                        self._add_edge(info, dst, node.lineno, eager, type_checking)
                    if eager and not type_checking:
                        local = (alias.asname or alias.name).split(".")[0]
                        info.import_aliases.setdefault(
                            local, alias.name if alias.asname else local
                        )
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(info.name, node.module, node.level)
                if target is None:
                    continue
                for alias in node.names:
                    # `from a import b` may import module a.b or symbol b of a
                    dst = self._known_module(f"{target}.{alias.name}")
                    if dst is None:
                        dst = self._known_module(target)
                    if dst is not None and target != "__future__":
                        self._add_edge(info, dst, node.lineno, eager, type_checking)
                    if eager and not type_checking and target != "__future__":
                        info.import_aliases.setdefault(
                            alias.asname or alias.name,
                            f"{target}.{alias.name}",
                        )
            elif isinstance(node, ast.If):
                guarded = _is_type_checking_test(node.test)
                self._scan_imports(
                    info,
                    node.body,
                    eager=eager,
                    type_checking=type_checking or guarded,
                )
                self._scan_imports(
                    info, node.orelse, eager=eager, type_checking=type_checking
                )
            elif isinstance(node, ast.Try):
                for sub in (node.body, node.orelse, node.finalbody):
                    self._scan_imports(
                        info, sub, eager=eager, type_checking=type_checking
                    )
                for handler in node.handlers:
                    self._scan_imports(
                        info, handler.body, eager=eager, type_checking=type_checking
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_imports(
                    info, node.body, eager=False, type_checking=type_checking
                )
            elif isinstance(node, ast.ClassDef):
                # class bodies execute at import time
                self._scan_imports(
                    info, node.body, eager=eager, type_checking=type_checking
                )
            elif isinstance(node, (ast.With, ast.For, ast.While)):
                self._scan_imports(
                    info, node.body, eager=eager, type_checking=type_checking
                )

    def _add_edge(
        self, info: ModuleInfo, dst: str, lineno: int, eager: bool, tc: bool
    ) -> None:
        if dst != info.name:
            self.edges.append(
                ImportEdge(info.name, dst, lineno, eager=eager, type_checking=tc)
            )

    # -- call graph ---------------------------------------------------------

    def _build_call_graph(self) -> None:
        for info in self.modules.values():
            imports = ImportMap(info.ctx.tree)
            for qual, fn in info.functions.items():
                self._scan_calls(info, imports, qual, fn)
        for fn in self.functions.values():
            for callee, lineno in fn.calls:
                self._callers.setdefault(callee, []).append((fn.dotted, lineno))

    def _scan_calls(
        self, info: ModuleInfo, imports: ImportMap, qual: str, fn: FunctionInfo
    ) -> None:
        class_prefix = qual.rsplit(".", 1)[0] if "." in qual else None
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call(info, imports, class_prefix, node.func)
            if resolved is not None:
                fn.calls.append((resolved, node.lineno))

    def _resolve_call(
        self,
        info: ModuleInfo,
        imports: ImportMap,
        class_prefix: str | None,
        func: ast.expr,
    ) -> str | None:
        # self.method() / cls.method() within the same class
        if (
            class_prefix is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            candidate = f"{info.name}.{class_prefix}.{func.attr}"
            if candidate in self.functions:
                return candidate
            return None
        # plain local name
        if isinstance(func, ast.Name):
            local = f"{info.name}.{func.id}"
            if local in self.functions:
                return local
        # imported / dotted name
        canonical = imports.resolve(func)
        if canonical is not None:
            return self.resolve_function(canonical)
        return None

    def resolve_function(self, dotted: str, *, _depth: int = 0) -> str | None:
        """Resolve ``dotted`` to a known function, following re-exports."""
        if _depth > 8:
            return None
        if dotted in self.functions:
            return dotted
        # follow one re-export hop: longest module prefix, then its alias
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            info = self.modules.get(module)
            if info is None:
                continue
            head, rest = parts[cut], parts[cut + 1 :]
            target = info.import_aliases.get(head)
            if target is None:
                return None
            return self.resolve_function(
                ".".join([target, *rest]), _depth=_depth + 1
            )
        return None

    # -- queries ------------------------------------------------------------

    def eager_edges(self) -> Iterator[ImportEdge]:
        """Edges executed at import time (not deferred, not TYPE_CHECKING)."""
        for edge in self.edges:
            if edge.eager and not edge.type_checking:
                yield edge

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components (size > 1) of the eager graph."""
        graph: dict[str, set[str]] = {name: set() for name in self.modules}
        for edge in self.eager_edges():
            graph[edge.src].add(edge.dst)
        # iterative Tarjan
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = 0
        for root in sorted(graph):
            if root in index:
                continue
            work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter
                        counter += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(graph[w]))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
                if low[v] == index[v]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == v:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))
        return sorted(sccs)

    def public_functions(self) -> dict[str, str]:
        """Functions on the public surface: ``{dotted: why}``.

        A function is public when its name appears in its own module's
        ``__all__``, when a package ``__init__`` re-exports it through its
        ``__all__``, or when it is defined in a CLI entry-point module.
        """
        public: dict[str, str] = {}
        for info in self.modules.values():
            if info.is_entrypoint:
                for fn in info.functions.values():
                    public.setdefault(fn.dotted, f"CLI entry point {info.name}")
                continue
            if info.all_names is None:
                continue
            for name in info.all_names:
                local = info.functions.get(name)
                if local is not None:
                    public.setdefault(
                        local.dotted, f"__all__ of {info.name}"
                    )
                    continue
                target = info.import_aliases.get(name)
                if target is not None:
                    resolved = self.resolve_function(target)
                    if resolved is not None:
                        public.setdefault(resolved, f"__all__ of {info.name}")
                # __all__-listed classes: every method is reachable
                if local is None and name in info.public_defs:
                    prefix = f"{info.name}.{name}."
                    for fn in self.functions.values():
                        if fn.dotted.startswith(prefix):
                            public.setdefault(
                                fn.dotted, f"__all__ of {info.name}"
                            )
        return public

    def callers_of(self, dotted: str) -> list[tuple[str, int]]:
        """``(caller, call lineno)`` pairs for a function."""
        return list(self._callers.get(dotted, ()))

    def reverse_reachable(self, roots: Iterable[str]) -> dict[str, tuple[str, int]]:
        """All functions that can transitively call one of ``roots``.

        Returns ``{function: (callee-it-calls-on-the-path, lineno)}`` so a
        witness call chain can be rebuilt by walking the map.
        """
        parent: dict[str, tuple[str, int]] = {}
        frontier = [r for r in roots if r in self.functions]
        seen = set(frontier)
        while frontier:
            nxt: list[str] = []
            for callee in frontier:
                for caller, lineno in self.callers_of(callee):
                    if caller not in seen:
                        seen.add(caller)
                        parent[caller] = (callee, lineno)
                        nxt.append(caller)
            frontier = nxt
        return parent

    def call_chain(
        self, start: str, targets: set[str], parent: dict[str, tuple[str, int]]
    ) -> list[str]:
        """Witness chain ``start -> ... -> target`` from a reverse BFS map."""
        chain = [start]
        current = start
        while current not in targets:
            step = parent.get(current)
            if step is None:
                break
            current = step[0]
            chain.append(current)
        return chain
