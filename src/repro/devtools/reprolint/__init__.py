"""reprolint — AST-based lint engine for this repository's paper invariants.

The repo's correctness rests on conventions no generic tool checks:
seeded-only randomness, byte-reproducible JSON artefacts, codec-registry
coverage of every :class:`~repro.topologies.base.Topology` family, a
single error hierarchy, and tolerance-based float comparison.  reprolint
encodes them as AST rules (``hyperbutterfly lint --list-rules``) with
inline suppression (``# reprolint: disable=HB101 -- why``), a baseline
for grandfathered findings, and a per-rule fixture self-test.

Beyond per-file rules, the engine builds a whole-program view
(:mod:`repro.devtools.reprolint.project`): a module import graph, symbol
tables, and a conservative call graph.  The HB4xx block enforces the
layer DAG and flags import cycles and dead exports; the HB5xx block
traces unseeded RNG construction interprocedurally to public APIs.  The
dynamic complement is ``hyperbutterfly sanitize``
(:mod:`repro.devtools.sanitize`), which A/B-runs JSON-emitting targets
under two ``PYTHONHASHSEED`` values.

Programmatic use::

    from repro.devtools.reprolint import lint_paths

    report = lint_paths(["src", "tests"])
    assert report.exit_code == 0, [f.render() for f in report.active]
"""

from __future__ import annotations

from repro.devtools.reprolint.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.engine import (
    LintReport,
    SelfTestError,
    lint_paths,
    lint_sources,
    self_test,
    self_test_rule,
)
from repro.devtools.reprolint.findings import Finding, Severity
from repro.devtools.reprolint.registry import (
    RuleRegistryError,
    all_rules,
    get_rule,
    register_rule,
)
from repro.devtools.reprolint.rules.base import FileRule, ProjectRule, Rule

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineError",
    "FileContext",
    "FileRule",
    "Finding",
    "LintReport",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "RuleRegistryError",
    "SelfTestError",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "register_rule",
    "self_test",
    "self_test_rule",
    "write_baseline",
]
