"""Numerics rules (HB3xx).

The analysis layer compares measured quantities (mean stretch, delivery
ratios, bisection bounds) against the paper's closed forms.  Exact
``==``/``!=`` on float arithmetic is how those comparisons silently rot
across numpy versions and platforms — require ``math.isclose`` or an
explicit tolerance instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.reprolint.context import FileContext
from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import FileRule

__all__ = ["FloatLiteralEqualityRule", "DivisionEqualityRule"]


def _compare_sides(node: ast.Compare) -> Iterator[tuple[ast.cmpop, ast.expr, ast.expr]]:
    left = node.left
    for op, right in zip(node.ops, node.comparators, strict=True):
        yield op, left, right
        left = right


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # cover the unary-minus spelling: -1.5
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


@register_rule
class FloatLiteralEqualityRule(FileRule):
    rule_id = "HB301"
    title = "no ==/!= against float literals"
    rationale = (
        "exact equality against a float literal (ratio == 0.5) is only "
        "correct when the computation is bit-for-bit stable; use "
        "math.isclose(x, 0.5, ...) with an explicit tolerance, or suppress "
        "with justification where exactness is itself the property under "
        "test"
    )

    fixture_hits = (
        "def check(ratio):\n"
        "    return ratio == 0.5\n"
    )
    fixture_clean = (
        "import math\n"
        "\n"
        "def check(ratio, count):\n"
        "    return math.isclose(ratio, 0.5, rel_tol=1e-9) and count == 3\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, lhs, rhs in _compare_sides(node):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(lhs) or _is_float_literal(rhs):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "exact ==/!= against a float literal; use "
                        "math.isclose with an explicit tolerance",
                    )
                    break


@register_rule
class DivisionEqualityRule(FileRule):
    rule_id = "HB302"
    title = "no ==/!= on true-division results"
    rationale = (
        "a / b produces a float even for int operands, so comparing the "
        "quotient exactly inherits rounding; compare cross-multiplied "
        "integers (a * d == c * b), use //, or math.isclose"
    )

    fixture_hits = (
        "def same_rate(a, b, c, d):\n"
        "    return a / b == c / d\n"
    )
    fixture_clean = (
        "def same_rate(a, b, c, d):\n"
        "    return a * d == c * b or a // b == c // d\n"
    )

    @staticmethod
    def _is_true_division(node: ast.expr) -> bool:
        return isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, lhs, rhs in _compare_sides(node):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_true_division(lhs) or self._is_true_division(rhs):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "exact ==/!= on a true-division result; compare "
                        "cross-multiplied integers or use math.isclose",
                    )
                    break
