"""API-contract rules (HB2xx).

Cross-layer conventions that keep the three subsystems (topologies,
fastgraph backend, fault machinery) consistent: every concrete topology
family participates in the codec registry (or is explicitly exempted),
intentional errors derive from :mod:`repro.errors`, and package
``__init__`` re-export surfaces match their ``__all__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import FileRule, ProjectRule, dotted_name

__all__ = [
    "CodecRegistrationRule",
    "ErrorHierarchyRule",
    "AllExportConsistencyRule",
]


def _class_defs(ctx: FileContext) -> Iterator[ast.ClassDef]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield node


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        dotted = dotted_name(base)
        if dotted:
            names.append(dotted.split(".")[-1])
    return names


def _is_abstract(node: ast.ClassDef) -> bool:
    if any(name in ("ABC", "ABCMeta") for name in _base_names(node)):
        return True
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in item.decorator_list:
                name = dotted_name(deco)
                if name and name.split(".")[-1] in (
                    "abstractmethod",
                    "abstractproperty",
                ):
                    return True
    return False


@register_rule
class CodecRegistrationRule(ProjectRule):
    rule_id = "HB201"
    title = "every concrete Topology has a fastgraph codec (or exemption)"
    rationale = (
        "the fast backend dispatches by class name through the codec "
        "registry; a family that silently misses registration drops to "
        "O(V)-per-call label BFS, which reads as a perf regression, not a "
        "bug — exempt irregular families explicitly with an inline "
        "suppression on the class line"
    )

    fixture_hits = {
        "src/repro/topologies/frob.py": (
            "from repro.topologies.base import Topology\n"
            "\n"
            "class FrobTopology(Topology):\n"
            "    def num_nodes(self):\n"
            "        return 1\n"
        ),
    }
    fixture_clean = {
        "src/repro/topologies/frob.py": (
            "from repro.topologies.base import Topology\n"
            "\n"
            "class FrobTopology(Topology):\n"
            "    def num_nodes(self):\n"
            "        return 1\n"
        ),
        "src/repro/fastgraph/morecodecs.py": (
            "from repro.fastgraph.codecs import IntRangeCodec, register_codec\n"
            "\n"
            "def _frob_factory(t):\n"
            "    return IntRangeCodec(t.num_nodes)\n"
            "\n"
            "register_codec('FrobTopology', _frob_factory)\n"
        ),
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        # class name -> (defining FileContext, ClassDef, base names)
        classes: dict[str, tuple[FileContext, ast.ClassDef, list[str]]] = {}
        registered: set[str] = set()
        for fctx in ctx.library_files:
            for node in _class_defs(fctx):
                classes[node.name] = (fctx, node, _base_names(node))
            for call in ast.walk(fctx.tree):
                if not isinstance(call, ast.Call):
                    continue
                callee = dotted_name(call.func)
                if not callee or callee.split(".")[-1] != "register_codec":
                    continue
                if call.args:
                    first = call.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        registered.add(first.value)
                    else:
                        name = dotted_name(first)
                        if name:
                            registered.add(name.split(".")[-1])

        def descends_from_topology(name: str, seen: frozenset[str]) -> bool:
            if name == "Topology":
                return True
            entry = classes.get(name)
            if entry is None or name in seen:
                return False
            return any(
                descends_from_topology(base, seen | {name})
                for base in entry[2]
            )

        def covered(name: str, seen: frozenset[str]) -> bool:
            # a registration on any ancestor covers the subclass through
            # the registry's MRO walk in codec_for()
            if name in registered:
                return True
            entry = classes.get(name)
            if entry is None or name in seen:
                return False
            return any(covered(base, seen | {name}) for base in entry[2])

        for name, (fctx, node, _bases) in sorted(classes.items()):
            if name == "Topology" or not descends_from_topology(name, frozenset()):
                continue
            if _is_abstract(node):
                continue
            if not covered(name, frozenset()):
                yield fctx.finding(
                    self.rule_id,
                    node,
                    f"concrete Topology subclass {name!r} has no fastgraph "
                    f"codec registration; register one (register_codec) or "
                    f"exempt the class line with a justified suppression",
                )


@register_rule
class ErrorHierarchyRule(FileRule):
    rule_id = "HB202"
    title = "library errors derive from repro.errors"
    rationale = (
        "downstream users catch ReproError to separate library failures "
        "from genuine programming errors; raising bare ValueError/"
        "RuntimeError/KeyError punches holes in that contract "
        "(InvalidParameterError *is* a ValueError, so hierarchy-derived "
        "errors stay backwards compatible)"
    )

    _BARE = {"ValueError", "RuntimeError", "KeyError", "IndexError", "Exception"}

    fixture_hits = (
        "def check(n):\n"
        "    if n < 0:\n"
        "        raise ValueError('negative')\n"
    )
    fixture_clean = (
        "from repro.errors import InvalidParameterError\n"
        "\n"
        "def check(n):\n"
        "    if n < 0:\n"
        "        raise InvalidParameterError('negative')\n"
        "    if n > 10:\n"
        "        raise NotImplementedError('large n')\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call):
                name = dotted_name(exc.func)
            elif isinstance(exc, (ast.Name, ast.Attribute)):
                name = dotted_name(exc)
            if name and name.split(".")[-1] in self._BARE:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"raise of bare {name.split('.')[-1]}; raise a "
                    f"repro.errors subclass so callers can catch ReproError",
                )


@register_rule
class AllExportConsistencyRule(FileRule):
    rule_id = "HB203"
    title = "__all__ matches the module's public bindings"
    rationale = (
        "package __init__ files are the library's public API surface; an "
        "__all__ entry with no binding breaks `from repro import *`, and a "
        "public binding missing from __all__ ships an undocumented API"
    )

    fixture_hits = (
        "__all__ = ['present', 'missing']\n"
        "\n"
        "def present():\n"
        "    return 1\n"
    )
    fixture_clean = (
        "__all__ = ['present']\n"
        "\n"
        "def present():\n"
        "    return 1\n"
        "\n"
        "def _private():\n"
        "    return 2\n"
    )

    @staticmethod
    def _declared_all(tree: ast.Module) -> tuple[ast.AST, list[str]] | None:
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(value, (ast.List, ast.Tuple)):
                        names = [
                            el.value
                            for el in value.elts
                            if isinstance(el, ast.Constant)
                            and isinstance(el.value, str)
                        ]
                        return node, names
        return None

    @staticmethod
    def _top_level_bindings(tree: ast.Module) -> dict[str, int]:
        bound: dict[str, int] = {}

        def bind(name: str, lineno: int) -> None:
            bound.setdefault(name, lineno)

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bind(node.name, node.lineno)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bind((alias.asname or alias.name).split(".")[0], node.lineno)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    bind(alias.asname or alias.name, node.lineno)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bind(target.id, node.lineno)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for el in target.elts:
                            if isinstance(el, ast.Name):
                                bind(el.id, node.lineno)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bind(node.target.id, node.lineno)
            elif isinstance(node, (ast.If, ast.Try)):
                # common conditional-import pattern: bind everything inside
                for sub in ast.walk(node):
                    if isinstance(sub, ast.ImportFrom):
                        if sub.module == "__future__":
                            continue
                        for alias in sub.names:
                            bind(alias.asname or alias.name, sub.lineno)
                    elif isinstance(sub, ast.Import):
                        for alias in sub.names:
                            bind(
                                (alias.asname or alias.name).split(".")[0],
                                sub.lineno,
                            )
        return bound

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        declared = self._declared_all(ctx.tree)
        if declared is None:
            return
        all_node, listed = declared
        bound = self._top_level_bindings(ctx.tree)
        for name in listed:
            if name not in bound:
                yield ctx.finding(
                    self.rule_id,
                    all_node,
                    f"__all__ lists {name!r} but the module never binds it",
                )
        if ctx.is_package_init:
            listed_set = set(listed)
            for name, lineno in sorted(bound.items(), key=lambda kv: kv[1]):
                if name.startswith("_") or name in listed_set:
                    continue
                yield ctx.finding(
                    self.rule_id,
                    lineno,
                    f"package __init__ binds public name {name!r} missing "
                    f"from __all__ (add it, rename with a leading "
                    f"underscore, or alias the import)",
                )
