"""Rule base classes and shared AST helpers.

Every rule declares:

* ``rule_id`` — stable id (``HB1xx`` determinism, ``HB2xx`` API contracts,
  ``HB3xx`` numerics) used in reports, suppressions, and baselines;
* ``title`` / ``rationale`` — what is flagged and which paper invariant or
  repo convention it protects;
* fixtures — minimal source snippets the engine's :func:`self-test
  <repro.devtools.reprolint.engine.self_test>` runs every rule against:
  ``fixture_hits`` must produce at least one finding, ``fixture_clean``
  none, and the suppressed variant is *derived automatically* by appending
  an inline ``# reprolint: disable=ID`` to each flagged line, which
  exercises the suppression machinery for every rule for free.

File rules see one :class:`~repro.devtools.reprolint.context.FileContext`
at a time; project rules see the whole
:class:`~repro.devtools.reprolint.context.ProjectContext` once (cross-file
contracts such as registry completeness).  Project-rule fixtures are
``{path: source}`` mappings.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Iterator, Mapping

from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.findings import Finding

__all__ = [
    "Rule",
    "FileRule",
    "ProjectRule",
    "ImportMap",
    "dotted_name",
]


class Rule(ABC):
    """Common surface of file- and project-scoped rules."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    @property
    def group(self) -> str:
        """Rule group derived from the id block (1xx … 7xx)."""
        block = self.rule_id[2:3]
        return {
            "1": "determinism",
            "2": "contracts",
            "3": "numerics",
            "4": "architecture",
            "5": "taint",
            "6": "numerics-flow",
            "7": "concurrency",
            "8": "verification",
        }.get(block, "other")


class FileRule(Rule):
    """A rule evaluated independently on each file."""

    #: source that must trigger >= 1 finding under a library path
    fixture_hits: str = ""
    #: source that must trigger none
    fixture_clean: str = ""

    @abstractmethod
    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""


class ProjectRule(Rule):
    """A rule evaluated once over all files (cross-file contracts)."""

    fixture_hits: Mapping[str, str] = {}
    fixture_clean: Mapping[str, str] = {}

    @abstractmethod
    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        """Yield findings over the whole project."""


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolves local aliases back to canonical module / symbol paths.

    ``import numpy as np`` maps ``np`` → ``numpy``; ``from numpy import
    random as nprand`` maps ``nprand`` → ``numpy.random``; ``from random
    import choice`` maps ``choice`` → ``random.choice``.  Used by rules to
    recognise calls like ``np.random.shuffle`` regardless of aliasing.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds full path
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, or ``None``."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical_head = self.aliases.get(head, head)
        return f"{canonical_head}.{rest}" if rest else canonical_head
