"""Built-in reprolint rules.

Importing this package registers every built-in rule with the registry
(:mod:`repro.devtools.reprolint.registry`); each rule module groups one
id block:

* :mod:`~repro.devtools.reprolint.rules.determinism` — HB101–HB105
* :mod:`~repro.devtools.reprolint.rules.contracts` — HB201–HB203
* :mod:`~repro.devtools.reprolint.rules.numerics` — HB301–HB302
* :mod:`~repro.devtools.reprolint.rules.architecture` — HB401–HB403
* :mod:`~repro.devtools.reprolint.rules.taint` — HB501–HB502
* :mod:`~repro.devtools.reprolint.rules.numerics_flow` — HB601–HB605
* :mod:`~repro.devtools.reprolint.rules.concurrency` — HB701–HB705
* :mod:`~repro.devtools.reprolint.rules.verification` — HB801–HB806
"""

from __future__ import annotations

from repro.devtools.reprolint.rules import architecture as architecture
from repro.devtools.reprolint.rules import concurrency as concurrency
from repro.devtools.reprolint.rules import contracts as contracts
from repro.devtools.reprolint.rules import determinism as determinism
from repro.devtools.reprolint.rules import numerics as numerics
from repro.devtools.reprolint.rules import numerics_flow as numerics_flow
from repro.devtools.reprolint.rules import taint as taint
from repro.devtools.reprolint.rules import verification as verification
from repro.devtools.reprolint.rules.base import (
    FileRule,
    ImportMap,
    ProjectRule,
    Rule,
    dotted_name,
)

__all__ = [
    "Rule",
    "FileRule",
    "ProjectRule",
    "ImportMap",
    "dotted_name",
    "architecture",
    "concurrency",
    "contracts",
    "determinism",
    "numerics",
    "numerics_flow",
    "taint",
    "verification",
]
