"""Numerics-flow rules (HB6xx) — dtype dataflow over the kernel layer.

HB3xx judges comparison *shapes*; this block judges what the abstract
interpreter (:mod:`repro.devtools.reprolint.dataflow`) can prove about
the *values* flowing through them.  The paper's exactness story lives in
packed ``uint64`` label arithmetic inside ``fastgraph/`` — and numpy's
promotion semantics make the dangerous spellings silent:

* ``uint64 ⊕ int64`` promotes to ``float64`` (bitwise variants raise at
  runtime, arithmetic ones silently lose exactness past 2^53) — HB601;
* a shift count at or past the dtype's width is undefined behaviour in
  the underlying C (numpy wraps or zeros depending on platform/version)
  — HB602;
* storing a wider value through ``arr[...] = wide`` or ``ufunc(...,
  out=narrow)`` truncates silently — HB603;
* ``np.int_``/``np.intp`` (and ``dtype=int``) mean "whatever this
  platform says", which must never leak into persisted artefacts —
  HB604;
* sub-32-bit accumulators (``uint8 @ uint8`` products, ``.sum()`` on
  narrow ints) wrap exactly where the repo counts nodes, and float
  accumulations compared ``==`` to integer counts rot per platform —
  HB605.

All five run on library files only; every reported dtype is one the
interpreter actually derived, so findings under-approximate but never
guess.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.dataflow import (
    DType,
    ModuleAnalysis,
    Value,
    promote_values,
)
from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import FileRule, ImportMap, ProjectRule

__all__ = [
    "SignedUnsignedMixRule",
    "ShiftExceedsWidthRule",
    "ImplicitDowncastRule",
    "PlatformWidthDTypeRule",
    "NarrowAccumulatorRule",
]

#: BinOp node types whose operands promote like integer arithmetic
_INT_BINOPS = (
    ast.BitAnd,
    ast.BitOr,
    ast.BitXor,
    ast.LShift,
    ast.RShift,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.FloorDiv,
    ast.Mod,
)

#: numpy function names that promote their first two arguments like BinOps
_PROMOTING_CALLS = frozenset(
    {
        "numpy.bitwise_and",
        "numpy.bitwise_or",
        "numpy.bitwise_xor",
        "numpy.left_shift",
        "numpy.right_shift",
        "numpy.add",
        "numpy.subtract",
        "numpy.multiply",
    }
)


def _binop_pairs(
    fctx: FileContext, imports: ImportMap
) -> Iterator[tuple[ast.AST, ast.expr, ast.expr, str]]:
    """Integer-promoting operand pairs: BinOps and explicit numpy ufuncs.

    Yields ``(anchor node, left, right, op spelling)``.
    """
    for node in ast.walk(fctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, _INT_BINOPS):
            yield node, node.left, node.right, type(node.op).__name__
        elif isinstance(node, ast.Call) and len(node.args) >= 2:
            canonical = imports.resolve(node.func)
            if canonical in _PROMOTING_CALLS:
                yield node, node.args[0], node.args[1], canonical.rsplit(".", 1)[-1]


@register_rule
class SignedUnsignedMixRule(ProjectRule):
    rule_id = "HB601"
    title = "no signed/unsigned mixing on 64-bit words"
    rationale = (
        "numpy has no integer type holding both uint64 and a signed int, "
        "so uint64 + int64 promotes to float64 — exactness is gone past "
        "2^53, and the bitwise variants raise TypeError outright; packed "
        "(butterfly, hypercube) labels must stay in one signedness, so "
        "cast the signed operand explicitly (np.uint64(...)/astype)"
    )

    fixture_hits = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def mask_low(packed: np.ndarray) -> np.ndarray:\n"
            "    words = packed.astype(np.uint64)\n"
            "    return words & np.int64(3)\n"
        )
    }
    fixture_clean = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def mask_low(packed: np.ndarray) -> np.ndarray:\n"
            "    words = packed.astype(np.uint64)\n"
            "    return words & np.uint64(3)\n"
        )
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        for fctx in ctx.library_files:
            analysis = ctx.dataflow.module(fctx)
            imports = ImportMap(fctx.tree)
            for node, left, right, spelling in _binop_pairs(fctx, imports):
                lv, rv = analysis.value_of(left), analysis.value_of(right)
                if not (lv.is_strong and rv.is_strong):
                    continue
                assert lv.dtype is not None and rv.dtype is not None
                kinds = {lv.dtype.kind, rv.dtype.kind}
                if kinds != {"i", "u"}:
                    continue
                unsigned = lv.dtype if lv.dtype.kind == "u" else rv.dtype
                if unsigned.bits < 64:
                    continue  # a wider signed int exists; promotion is lossless
                provenance = (
                    " on a packed label word" if lv.packed or rv.packed else ""
                )
                yield fctx.finding(
                    self.rule_id,
                    node,
                    f"{spelling} mixes {lv.dtype} with {rv.dtype}{provenance}: "
                    "numpy promotes uint64 vs signed to float64 (bitwise ops "
                    "raise); cast one side so both operands share signedness",
                )


@register_rule
class ShiftExceedsWidthRule(ProjectRule):
    rule_id = "HB602"
    title = "shift counts must stay below the dtype width"
    rationale = (
        "shifting an N-bit integer by >= N (or by a negative count) is "
        "undefined behaviour in the underlying C — numpy's result varies "
        "by platform and version instead of raising; a packed-label shift "
        "that overshoots the word silently corrupts every rank it touches"
    )

    fixture_hits = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def high_bit() -> np.uint64:\n"
            "    one = np.uint64(1)\n"
            "    return one << np.uint64(64)\n"
        )
    }
    fixture_clean = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def high_bit() -> np.uint64:\n"
            "    one = np.uint64(1)\n"
            "    return one << np.uint64(63)\n"
        )
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        for fctx in ctx.library_files:
            analysis = ctx.dataflow.module(fctx)
            imports = ImportMap(fctx.tree)
            for node, left, right, spelling in _binop_pairs(fctx, imports):
                if spelling not in (
                    "LShift",
                    "RShift",
                    "left_shift",
                    "right_shift",
                ):
                    continue
                lv, rv = analysis.value_of(left), analysis.value_of(right)
                if not (lv.is_strong and lv.dtype is not None and lv.dtype.is_int):
                    continue
                if not isinstance(rv.const, int):
                    continue
                if 0 <= rv.const < lv.dtype.bits:
                    continue
                yield fctx.finding(
                    self.rule_id,
                    node,
                    f"shift count {rv.const} is outside [0, "
                    f"{lv.dtype.bits}) for a {lv.dtype} operand: the result "
                    "is platform-defined, not an error; widen the dtype or "
                    "bound the count",
                )


@register_rule
class ImplicitDowncastRule(ProjectRule):
    rule_id = "HB603"
    title = "no silent downcasts at stores or ufunc out="
    rationale = (
        "arr[idx] = wide and ufunc(..., out=narrow) truncate to the "
        "destination dtype without any warning — a rank or count that no "
        "longer fits wraps silently; make the narrowing explicit with "
        "astype(..., casting=...) or widen the destination"
    )

    fixture_hits = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def gather(n: int) -> np.ndarray:\n"
            "    wide = np.arange(n, dtype=np.int64)\n"
            "    out = np.zeros(n, dtype=np.int32)\n"
            "    out[:] = wide\n"
            "    return out\n"
        )
    }
    fixture_clean = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def gather(n: int) -> np.ndarray:\n"
            "    wide = np.arange(n, dtype=np.int64)\n"
            "    out = np.zeros(n, dtype=np.int64)\n"
            "    out[:] = wide\n"
            "    return out\n"
        )
    }

    @staticmethod
    def _narrows(src: DType, dst: DType) -> bool:
        if src.kind == "f" and dst.is_int:
            return True
        if src.kind == "f" and dst.kind == "f":
            return src.bits > dst.bits
        if src.is_int and dst.is_int:
            return src.bits > dst.bits or (
                src.kind == "u" and dst.kind == "i" and src.bits >= dst.bits
            )
        return False

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        for fctx in ctx.library_files:
            analysis = ctx.dataflow.module(fctx)
            imports = ImportMap(fctx.tree)
            for node in ast.walk(fctx.tree):
                if isinstance(node, ast.Assign):
                    rv = analysis.value_of(node.value)
                    if not (rv.is_strong and rv.dtype is not None):
                        continue
                    for target in node.targets:
                        if not isinstance(target, ast.Subscript):
                            continue
                        tv = analysis.value_of(target.value)
                        if not (
                            tv.kind == "array"
                            and tv.dtype is not None
                            and self._narrows(rv.dtype, tv.dtype)
                        ):
                            continue
                        yield fctx.finding(
                            self.rule_id,
                            node,
                            f"storing {rv.dtype} values into a {tv.dtype} "
                            "array truncates silently; cast explicitly or "
                            "widen the destination",
                        )
                elif isinstance(node, ast.Call) and len(node.args) >= 2:
                    canonical = imports.resolve(node.func)
                    if canonical not in _PROMOTING_CALLS:
                        continue
                    out_expr = next(
                        (kw.value for kw in node.keywords if kw.arg == "out"),
                        None,
                    )
                    if out_expr is None:
                        continue
                    ov = analysis.value_of(out_expr)
                    expected = promote_values(
                        analysis.value_of(node.args[0]),
                        analysis.value_of(node.args[1]),
                    )
                    if not (
                        ov.is_strong
                        and ov.dtype is not None
                        and expected.is_strong
                        and expected.dtype is not None
                        and self._narrows(expected.dtype, ov.dtype)
                    ):
                        continue
                    yield fctx.finding(
                        self.rule_id,
                        node,
                        f"ufunc result promotes to {expected.dtype} but "
                        f"out= is {ov.dtype}: the store truncates silently",
                    )


@register_rule
class PlatformWidthDTypeRule(FileRule):
    rule_id = "HB604"
    title = "no platform-width dtypes in library code"
    rationale = (
        "np.int_/np.intp/np.uint/np.uintp (and dtype=int) resolve to "
        "whatever width the platform's C toolchain picked — artefacts, "
        "codecs, and on-disk caches written with them are not portable "
        "and silently change meaning across platforms; always spell the "
        "width (np.int64, np.uint64, ...)"
    )

    _PLATFORM = frozenset(
        {
            "numpy.int_",
            "numpy.intp",
            "numpy.intc",
            "numpy.uint",
            "numpy.uintp",
            "numpy.uintc",
            "numpy.long",
            "numpy.ulong",
            "numpy.longlong",
            "numpy.ulonglong",
        }
    )

    fixture_hits = (
        "import numpy as np\n"
        "\n"
        "def persist(n: int) -> np.ndarray:\n"
        "    return np.zeros(n, dtype=np.intp)\n"
    )
    fixture_clean = (
        "import numpy as np\n"
        "\n"
        "def persist(n: int) -> np.ndarray:\n"
        "    return np.zeros(n, dtype=np.int64)\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                canonical = imports.resolve(node)
                if canonical in self._PLATFORM:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{canonical.rsplit('.', 1)[-1]} is a platform-width "
                        "alias; spell the width explicitly (np.int64, "
                        "np.uint64, ...)",
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "dtype"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id == "int"
                        and imports.resolve(kw.value) == "int"
                    ):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            "dtype=int means the platform default integer; "
                            "spell the width explicitly (np.int64)",
                        )


@register_rule
class NarrowAccumulatorRule(ProjectRule):
    rule_id = "HB605"
    title = "no narrow or float accumulators behind exact counts"
    rationale = (
        "matrix products accumulate in the operands' promoted dtype "
        "(uint8 @ uint8 wraps at 256 — a node with a multiple-of-256 "
        "frontier in-degree silently reads as unreached), .sum() on a "
        "sub-32-bit int accumulates in the platform integer, and a float "
        "accumulation compared == to an integer count rots per platform; "
        "widen the operand, pass dtype=, or compare with a tolerance"
    )

    fixture_hits = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def reached(adjacency, frontier: np.ndarray) -> np.ndarray:\n"
            "    return (adjacency @ frontier.astype(np.uint8)) > 0\n"
            "\n"
            "def popcount(words: np.ndarray) -> int:\n"
            "    return int(np.unpackbits(words.view(np.uint8)).sum())\n"
        )
    }
    fixture_clean = {
        "src/repro/_flow_fixture.py": (
            "import numpy as np\n"
            "\n"
            "def reached(adjacency, frontier: np.ndarray) -> np.ndarray:\n"
            "    return (adjacency @ frontier.astype(np.int32)) > 0\n"
            "\n"
            "def popcount(words: np.ndarray) -> int:\n"
            "    return int(\n"
            "        np.unpackbits(words.view(np.uint8)).sum(dtype=np.int64)\n"
            "    )\n"
        )
    }

    @staticmethod
    def _narrow_product_operand(value: Value) -> bool:
        return (
            value.is_strong
            and value.dtype is not None
            and (
                (value.dtype.is_int and value.dtype.bits <= 16)
                or (value.dtype.kind == "f" and value.dtype.bits <= 16)
            )
        )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        for fctx in ctx.library_files:
            analysis = ctx.dataflow.module(fctx)
            imports = ImportMap(fctx.tree)
            for node in ast.walk(fctx.tree):
                finding = self._check_node(fctx, analysis, imports, node)
                if finding is not None:
                    yield finding

    def _check_node(
        self,
        fctx: FileContext,
        analysis: ModuleAnalysis,
        imports: ImportMap,
        node: ast.AST,
    ) -> Finding | None:
        # (a) matrix products with a sub-32-bit operand wrap in-place
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            for side in (node.left, node.right):
                value = analysis.value_of(side)
                if self._narrow_product_operand(value):
                    assert value.dtype is not None
                    return fctx.finding(
                        self.rule_id,
                        node,
                        f"@ accumulates in the promoted operand dtype; a "
                        f"{value.dtype} operand wraps at 2^{value.dtype.bits}"
                        " — cast it up (e.g. astype(np.int32)) first",
                    )
        if isinstance(node, ast.Call):
            canonical = imports.resolve(node.func)
            if canonical in ("numpy.dot", "numpy.matmul") and len(node.args) >= 2:
                for arg in node.args[:2]:
                    value = analysis.value_of(arg)
                    if self._narrow_product_operand(value):
                        assert value.dtype is not None
                        return fctx.finding(
                            self.rule_id,
                            node,
                            f"{canonical.rsplit('.', 1)[-1]} accumulates in "
                            f"the promoted operand dtype; a {value.dtype} "
                            "operand wraps — cast it up first",
                        )
            # (b) .sum() on a narrow int without an explicit accumulator
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "sum"
                and not any(kw.arg == "dtype" for kw in node.keywords)
            ):
                base = analysis.value_of(node.func.value)
                if (
                    base.is_strong
                    and base.dtype is not None
                    and base.dtype.is_int
                    and base.dtype.bits < 32
                ):
                    return fctx.finding(
                        self.rule_id,
                        node,
                        f".sum() on a {base.dtype} array accumulates in the "
                        "platform integer; pass dtype=np.int64 explicitly",
                    )
        # (c) float accumulations compared exactly against integer counts
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                return None
            sides = [node.left, node.comparators[0]]
            values = [analysis.value_of(s) for s in sides]
            has_float = any(
                v.is_strong and v.dtype is not None and v.dtype.kind == "f"
                for v in values
            )
            has_int = any(
                v.kind == "pyint"
                or (v.is_strong and v.dtype is not None and v.dtype.is_int)
                for v in values
            )
            if has_float and has_int:
                return fctx.finding(
                    self.rule_id,
                    node,
                    "float-dtype accumulation compared ==/!= against an "
                    "integer count; accumulate in an integer dtype or use "
                    "math.isclose",
                )
        return None
