"""Architecture/layering rules (HB4xx) — whole-program.

The repo's layer DAG (``docs/architecture.md``) is

``_bits/errors ← topologies/cayley ← routing/core/embeddings ←
fastgraph/analysis ← faults/simulation ← cli/viz``

and the paper's structural guarantees only stay auditable while the code
respects it: a topology that eagerly pulls in the simulation layer can no
longer be reasoned about (or imported) in isolation.  These rules run on
the :class:`~repro.devtools.reprolint.project.ProjectGraph`:

* **HB401** — an eager (import-time) import may only point at the same or
  a lower layer; upward dependencies must be deferred into the function
  that needs them (the sanctioned idiom, see ``faults/campaigns.py``) or
  redesigned away;
* **HB402** — the eager import graph must stay acyclic (a cycle imports
  fine or not depending on which module is hit first — a time bomb);
* **HB403** — a public top-level symbol in a library module that no
  ``__all__`` exports and no linted file references is dead API surface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.reprolint.context import ProjectContext
from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.project import layer_of, layer_title
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import ProjectRule

__all__ = ["LayeringRule", "ImportCycleRule", "DeadExportRule"]


@register_rule
class LayeringRule(ProjectRule):
    rule_id = "HB401"
    title = "eager imports must respect the layer DAG"
    rationale = (
        "the architecture's layer DAG (_bits/errors <- topologies/cayley <- "
        "routing/core/embeddings <- fastgraph/analysis <- faults/simulation "
        "<- cli/viz) keeps every layer importable and testable without the "
        "layers above it; an import-time dependency pointing upward couples "
        "the layers — defer it into the function that needs it, or move the "
        "shared code down"
    )

    fixture_hits = {
        "src/repro/topologies/widget.py": (
            "from repro.faults.gadget import inject\n"
            "\n"
            "def build():\n"
            "    return inject()\n"
        ),
        "src/repro/faults/gadget.py": (
            "def inject():\n"
            "    return 1\n"
        ),
    }
    fixture_clean = {
        "src/repro/topologies/widget.py": (
            "def build():\n"
            "    from repro.faults.gadget import inject\n"
            "\n"
            "    return inject()\n"
        ),
        "src/repro/faults/gadget.py": (
            "from repro.topologies.widget import build\n"
            "\n"
            "def inject():\n"
            "    return 1\n"
        ),
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        for edge in graph.eager_edges():
            src_layer = layer_of(edge.src)
            dst_layer = layer_of(edge.dst)
            if src_layer is None or dst_layer is None:
                continue
            if dst_layer > src_layer:
                fctx = graph.modules[edge.src].ctx
                yield fctx.finding(
                    self.rule_id,
                    edge.lineno,
                    f"layering violation: {edge.src} "
                    f"({layer_title(src_layer)}) eagerly imports {edge.dst} "
                    f"({layer_title(dst_layer)}, a higher layer); defer the "
                    f"import into the function that needs it",
                )


@register_rule
class ImportCycleRule(ProjectRule):
    rule_id = "HB402"
    title = "the eager import graph must stay acyclic"
    rationale = (
        "a cycle of import-time dependencies works or crashes depending on "
        "which member is imported first (partially-initialised modules), so "
        "the package's import order becomes load-bearing; break the cycle "
        "with a deferred import or by extracting the shared piece"
    )

    fixture_hits = {
        "src/repro/routing/alpha.py": (
            "from repro.routing.beta import b\n"
            "\n"
            "def a():\n"
            "    return b()\n"
        ),
        "src/repro/routing/beta.py": (
            "from repro.routing.alpha import a\n"
            "\n"
            "def b():\n"
            "    return a()\n"
        ),
    }
    fixture_clean = {
        "src/repro/routing/alpha.py": (
            "from repro.routing.beta import b\n"
            "\n"
            "def a():\n"
            "    return b()\n"
        ),
        "src/repro/routing/beta.py": (
            "def b():\n"
            "    return 1\n"
        ),
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        for cycle in graph.import_cycles():
            members = set(cycle)
            rendered = " -> ".join(cycle + [cycle[0]])
            for module in cycle:
                edge = next(
                    (
                        e
                        for e in graph.eager_edges()
                        if e.src == module and e.dst in members
                    ),
                    None,
                )
                if edge is None:
                    continue
                fctx = graph.modules[module].ctx
                yield fctx.finding(
                    self.rule_id,
                    edge.lineno,
                    f"import cycle {rendered}; break it with a deferred "
                    f"import or extract the shared code",
                )


@register_rule
class DeadExportRule(ProjectRule):
    rule_id = "HB403"
    title = "no dead public symbols"
    rationale = (
        "a public top-level symbol that no __all__ exports and nothing in "
        "the project references is unreachable API surface: it rots "
        "silently, dodges every test, and misleads readers about what the "
        "module provides — delete it, export it, or underscore it"
    )

    fixture_hits = {
        "src/repro/__init__.py": "",
        "src/repro/analysis/extra.py": (
            "__all__ = ['used']\n"
            "\n"
            "def used():\n"
            "    return 1\n"
            "\n"
            "def orphan():\n"
            "    return 2\n"
        ),
    }
    fixture_clean = {
        "src/repro/__init__.py": "",
        "src/repro/analysis/extra.py": (
            "__all__ = ['used', 'also_exported']\n"
            "\n"
            "def used():\n"
            "    return 1\n"
            "\n"
            "def also_exported():\n"
            "    return used()\n"
            "\n"
            "def _private_helper():\n"
            "    return 3\n"
        ),
    }

    #: names that are structural, not API (dunder config, registrations)
    _STRUCTURAL = {"main"}

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        # only meaningful when the whole library is being linted; a partial
        # file set would make everything look unreferenced
        if "repro" not in graph.modules:
            return
        referenced: set[str] = set()
        for fctx in ctx.files:
            for node in ast.walk(fctx.tree):
                if isinstance(node, ast.Name):
                    referenced.add(node.id)
                elif isinstance(node, ast.Attribute):
                    referenced.add(node.attr)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        referenced.add(alias.name.split(".")[0])
                        referenced.add(alias.name.split(".")[-1])
                        if alias.asname:
                            referenced.add(alias.asname)
        exported: set[str] = set()
        for info in graph.modules.values():
            exported.update(info.all_names or ())
        for name, info in sorted(graph.modules.items()):
            if not info.ctx.is_library or info.ctx.is_package_init:
                continue
            for symbol, lineno in sorted(info.public_defs.items()):
                if symbol.startswith("_") or symbol in self._STRUCTURAL:
                    continue
                if symbol in exported or symbol in referenced:
                    continue
                yield info.ctx.finding(
                    self.rule_id,
                    lineno,
                    f"public symbol {symbol!r} in {name} is exported by no "
                    f"__all__ and referenced nowhere in the project; delete "
                    f"it, export it, or rename it with a leading underscore",
                )
