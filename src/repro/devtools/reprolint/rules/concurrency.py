"""Concurrency / fork-safety rules (HB7xx).

``fastgraph/parallel.py`` promises bit-identical pooled sweeps for any
job count.  That promise survives only while the pool discipline holds:
payloads must pickle (spawn workers re-import, they do not inherit
closures), workers must not mutate module globals (mutations stay in the
child and silently diverge from the parent under fork, or vanish under
spawn), executors must be closed deterministically, fork-inherited RNG
state must never be shared across workers (every child would replay the
same stream), and the start method itself must be pinned — fork and
spawn schedule differently and default differently per platform.

Five rules, all file-scoped and library-only:

* HB701 — pool payloads (map/submit targets, initializers) must be
  statically picklable: no lambdas, no nested functions;
* HB702 — worker functions must not mutate module-level state;
* HB703 — executors/pools must be closed via a context manager;
* HB704 — worker functions must not read module-level RNG instances
  (fork-inherited generator state replays identically in every child);
* HB705 — process pools must pin an explicit ``mp_context``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.reprolint.context import FileContext
from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import FileRule, ImportMap

__all__ = [
    "PicklablePoolPayloadRule",
    "WorkerGlobalMutationRule",
    "ExecutorContextRule",
    "ForkSharedRNGRule",
    "ExplicitMpContextRule",
]

#: canonical constructors of process-backed pools (fork semantics apply)
_PROCESS_POOLS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: all pool constructors (process + thread) for lifecycle rules
_ALL_POOLS = _PROCESS_POOLS | frozenset(
    {
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.pool.ThreadPool",
        "multiprocessing.dummy.Pool",
    }
)

#: pool methods whose first argument is a worker payload
_SUBMIT_METHODS = frozenset(
    {
        "map",
        "submit",
        "imap",
        "imap_unordered",
        "apply",
        "apply_async",
        "starmap",
        "starmap_async",
        "map_async",
    }
)

#: constructors of live RNG state (sharing one across forks replays it)
_RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)

#: methods that mutate their receiver in place
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "setdefault",
        "insert",
        "remove",
        "discard",
        "clear",
        "pop",
        "popitem",
    }
)


@dataclass
class _PoolScan:
    """Everything the HB7xx rules need to know about one file's pools."""

    imports: ImportMap
    parents: dict[int, ast.AST] = field(default_factory=dict)
    #: pool constructor calls: (call node, canonical name)
    constructors: list[tuple[ast.Call, str]] = field(default_factory=list)
    #: local names bound to a pool (with ... as p / p = Executor())
    pool_names: set[str] = field(default_factory=set)
    #: payload expressions handed to pools: (expr, how it got there)
    payloads: list[tuple[ast.expr, str]] = field(default_factory=list)
    #: top-level function defs by name
    top_functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: names of functions defined inside another function
    nested_functions: set[str] = field(default_factory=set)
    #: module-level assigned data names (mutation targets for HB702)
    module_names: set[str] = field(default_factory=set)
    #: module-level names holding live RNG instances
    rng_names: set[str] = field(default_factory=set)

    def submitted_workers(self) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        """Top-level functions that run inside pool workers."""
        workers: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for payload, _how in self.payloads:
            if isinstance(payload, ast.Name) and payload.id in self.top_functions:
                workers[payload.id] = self.top_functions[payload.id]
        return workers


def _scan(ctx: FileContext) -> _PoolScan:
    scan = _PoolScan(imports=ImportMap(ctx.tree))
    for parent in ast.walk(ctx.tree):
        for child in ast.iter_child_nodes(parent):
            scan.parents[id(child)] = parent

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan.top_functions[node.name] = node
            for inner in ast.walk(node):
                if (
                    isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and inner is not node
                ):
                    scan.nested_functions.add(inner.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                scan.module_names.add(target.id)
                if isinstance(value, ast.Call):
                    canonical = scan.imports.resolve(value.func)
                    if canonical in _RNG_CONSTRUCTORS:
                        scan.rng_names.add(target.id)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        canonical = scan.imports.resolve(node.func)
        if canonical in _ALL_POOLS:
            scan.constructors.append((node, canonical))
            for kw in node.keywords:
                if kw.arg == "initializer":
                    scan.payloads.append((kw.value, "initializer"))
            parent = scan.parents.get(id(node))
            if isinstance(parent, ast.withitem) and isinstance(
                parent.optional_vars, ast.Name
            ):
                scan.pool_names.add(parent.optional_vars.id)
            elif isinstance(parent, ast.Assign):
                for target in parent.targets:
                    if isinstance(target, ast.Name):
                        scan.pool_names.add(target.id)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in scan.pool_names
            and node.args
        ):
            scan.payloads.append((node.args[0], node.func.attr))
    return scan


@register_rule
class PicklablePoolPayloadRule(FileRule):
    rule_id = "HB701"
    title = "pool payloads must be statically picklable"
    rationale = (
        "spawn-started workers re-import the module and unpickle the "
        "payload; lambdas and nested functions don't pickle, so the pool "
        "dies with PicklingError only on platforms whose default start "
        "method is spawn (macOS, Windows) — define worker functions at "
        "module top level"
    )

    fixture_hits = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def sweep(bounds):\n"
        "    def chunk(b):\n"
        "        return b * 2\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )
    fixture_clean = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def chunk(b):\n"
        "    return b * 2\n"
        "\n"
        "def sweep(bounds):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        scan = _scan(ctx)
        for payload, how in scan.payloads:
            if isinstance(payload, ast.Lambda):
                yield ctx.finding(
                    self.rule_id,
                    payload,
                    f"lambda as a pool {how} payload cannot pickle under "
                    "the spawn start method; use a module-level function",
                )
            elif (
                isinstance(payload, ast.Name)
                and payload.id in scan.nested_functions
            ):
                yield ctx.finding(
                    self.rule_id,
                    payload,
                    f"nested function {payload.id!r} as a pool {how} "
                    "payload cannot pickle under the spawn start method; "
                    "move it to module top level",
                )


@register_rule
class WorkerGlobalMutationRule(FileRule):
    rule_id = "HB702"
    title = "worker functions must not mutate module globals"
    rationale = (
        "a pool worker runs in a child process: writes to module-level "
        "state stay in the child (and under fork silently diverge from "
        "the parent's copy), so results depend on which worker ran which "
        "chunk; pass state through arguments/initargs and return results"
    )

    fixture_hits = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "_cache = {}\n"
        "\n"
        "def chunk(b):\n"
        "    _cache['last'] = b\n"
        "    return b * 2\n"
        "\n"
        "def sweep(bounds):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )
    fixture_clean = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def chunk(b):\n"
        "    local = {'last': b}\n"
        "    return local['last'] * 2\n"
        "\n"
        "def sweep(bounds):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        scan = _scan(ctx)
        for name, fn in scan.submitted_workers().items():
            local_names = {a.arg for a in _fn_args(fn)}
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"worker {name!r} rebinds module globals "
                        f"({', '.join(node.names)}); the write stays in "
                        "the child process — return the value instead",
                    )
                    continue
                target = _mutated_module_name(node, scan.module_names)
                if target is not None and target not in local_names:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"worker {name!r} mutates module-level "
                        f"{target!r}; the mutation stays in the child "
                        "process — pass state via initargs and return "
                        "results",
                    )


def _fn_args(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    args = fn.args
    out = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if args.vararg:
        out.append(args.vararg)
    if args.kwarg:
        out.append(args.kwarg)
    return out


def _mutated_module_name(node: ast.AST, module_names: set[str]) -> str | None:
    """Module-level name this statement mutates, if any."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            base: ast.expr = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if (
                base is not target
                and isinstance(base, ast.Name)
                and base.id in module_names
            ):
                return base.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATING_METHODS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in module_names
    ):
        return node.func.value.id
    return None


@register_rule
class ExecutorContextRule(FileRule):
    rule_id = "HB703"
    title = "executors must be closed via a context manager"
    rationale = (
        "an executor without `with` leaks worker processes on the error "
        "path and makes shutdown timing (and thus artefact completeness) "
        "nondeterministic; `with Executor(...) as pool:` joins workers "
        "deterministically on every exit"
    )

    fixture_hits = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def sweep(bounds, chunk):\n"
        "    pool = ProcessPoolExecutor()\n"
        "    return list(pool.map(chunk, bounds))\n"
    )
    fixture_clean = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def sweep(bounds, chunk):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        scan = _scan(ctx)
        for call, canonical in scan.constructors:
            parent = scan.parents.get(id(call))
            if isinstance(parent, ast.withitem):
                continue
            yield ctx.finding(
                self.rule_id,
                call,
                f"{canonical.rsplit('.', 1)[-1]} created outside a `with` "
                "block; worker shutdown is then nondeterministic — use "
                "`with ...(...) as pool:`",
            )


@register_rule
class ForkSharedRNGRule(FileRule):
    rule_id = "HB704"
    title = "workers must not read fork-inherited RNG state"
    rationale = (
        "under fork every worker inherits a byte-identical copy of a "
        "module-level Random/Generator — all children replay the same "
        "stream, which silently correlates 'independent' trials (and "
        "under spawn the module-level instance is re-seeded differently "
        "per worker); derive a per-task seed and construct the RNG inside "
        "the worker"
    )

    fixture_hits = (
        "import random\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "_rng = random.Random(0)\n"
        "\n"
        "def chunk(b):\n"
        "    return _rng.random() * b\n"
        "\n"
        "def sweep(bounds):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )
    fixture_clean = (
        "import random\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def chunk(b):\n"
        "    rng = random.Random(b)\n"
        "    return rng.random() * b\n"
        "\n"
        "def sweep(bounds):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        scan = _scan(ctx)
        if not scan.rng_names:
            return
        for name, fn in scan.submitted_workers().items():
            for node in ast.walk(fn):
                if isinstance(node, ast.Name) and node.id in scan.rng_names:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"worker {name!r} reads module-level RNG "
                        f"{node.id!r}: forked workers replay the same "
                        "stream; construct the RNG inside the worker from "
                        "a per-task seed",
                    )


@register_rule
class ExplicitMpContextRule(FileRule):
    rule_id = "HB705"
    title = "process pools must pin an explicit start method"
    rationale = (
        "the default multiprocessing start method differs per platform "
        "(fork on Linux, spawn on macOS/Windows) and forked workers "
        "inherit live module state spawn workers rebuild — the same sweep "
        "can differ across machines; pass "
        "mp_context=multiprocessing.get_context('spawn') (or pin fork "
        "deliberately and test the assumption)"
    )

    fixture_hits = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def sweep(bounds, chunk):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )
    fixture_clean = (
        "import multiprocessing as mp\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def sweep(bounds, chunk):\n"
        "    context = mp.get_context('spawn')\n"
        "    with ProcessPoolExecutor(mp_context=context) as pool:\n"
        "        return list(pool.map(chunk, bounds))\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        scan = _scan(ctx)
        for call, canonical in scan.constructors:
            if canonical not in _PROCESS_POOLS:
                continue
            kwargs = {kw.arg for kw in call.keywords}
            if "mp_context" in kwargs or "context" in kwargs:
                continue
            yield ctx.finding(
                self.rule_id,
                call,
                f"{canonical.rsplit('.', 1)[-1]} without an explicit "
                "mp_context: the start method (and thus worker state "
                "inheritance) follows the platform default; pass "
                "mp_context=multiprocessing.get_context(...)",
            )
