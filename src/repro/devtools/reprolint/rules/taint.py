"""Interprocedural determinism-taint rules (HB5xx) — whole-program.

HB1xx bans *ambient* randomness (``random.shuffle()``, ``time.time()``)
per file, but a seeded-looking construction can still poison an artefact
across module boundaries: ``random.Random()`` built with no seed in one
helper and consumed by a campaign runner three call-edges away is exactly
as unreproducible as a module-level call, and no per-file rule can see it.

These rules track RNG *construction sites* through the conservative call
graph of :class:`~repro.devtools.reprolint.project.ProjectGraph`:

* **HB501** — an unseeded ``random.Random()`` / ``numpy.random.
  default_rng()`` construction that a public API function, CLI entry
  point, or ``__all__``-exported class can transitively execute;
* **HB502** — a generator seeded from the wall clock (``random.Random(
  time.time())``), anywhere: the seed is recorded nowhere, so the run can
  never be replayed — this bites in tests and benchmarks too, which is
  why, unlike HB102, it is not limited to library code.

The call graph under-approximates (only statically-resolvable calls are
recorded), so HB501 can miss paths through dynamic dispatch — the dynamic
``hyperbutterfly sanitize`` subcommand exists to catch what static taint
cannot prove.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import FileRule, ImportMap, ProjectRule

__all__ = ["UnseededTaintRule", "WallClockSeedRule"]

#: RNG constructors that are deterministic *only* when given a seed
_SEEDABLE = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
}


def _is_unseeded(node: ast.Call) -> bool:
    """A seedable constructor called with no seed (or an explicit None)."""
    if not node.args and not node.keywords:
        return True
    if len(node.args) == 1 and not node.keywords:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return False


def _unseeded_sites(
    imports: ImportMap, root: ast.AST
) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(root):
        if not isinstance(node, ast.Call):
            continue
        canonical = imports.resolve(node.func)
        if canonical in _SEEDABLE and _is_unseeded(node):
            yield node, canonical


@register_rule
class UnseededTaintRule(ProjectRule):
    rule_id = "HB501"
    title = "no unseeded RNG reachable from the public surface"
    rationale = (
        "random.Random() / numpy.random.default_rng() with no seed draws "
        "its state from the OS, so every artefact downstream of it — "
        "BENCH_*.json curves, campaign tables, figure numbers — stops "
        "being a function of the declared experiment seed; this rule "
        "follows call edges, so a construction three helpers deep is "
        "flagged the moment a public API, CLI handler, or exported class "
        "can execute it"
    )

    fixture_hits = {
        "src/repro/faults/helper.py": (
            "import random\n"
            "\n"
            "__all__ = ['draw_faults']\n"
            "\n"
            "def _fresh_rng():\n"
            "    return random.Random()\n"
            "\n"
            "def draw_faults(count):\n"
            "    rng = _fresh_rng()\n"
            "    return [rng.random() for _ in range(count)]\n"
        ),
    }
    fixture_clean = {
        "src/repro/faults/helper.py": (
            "import random\n"
            "\n"
            "__all__ = ['draw_faults']\n"
            "\n"
            "def _scratch_rng():\n"
            "    return random.Random()\n"
            "\n"
            "def draw_faults(count, seed=0):\n"
            "    rng = random.Random(seed)\n"
            "    return [rng.random() for _ in range(count)]\n"
        ),
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        public = graph.public_functions()
        #: dotted function -> its unseeded construction sites
        tainted_fns: dict[str, list[tuple[ast.Call, str]]] = {}
        for _name, info in sorted(graph.modules.items()):
            if not info.ctx.is_library:
                continue
            imports = ImportMap(info.ctx.tree)
            in_function: set[ast.Call] = set()
            for qual in sorted(info.functions):
                fn = info.functions[qual]
                sites = list(_unseeded_sites(imports, fn.node))
                if sites:
                    tainted_fns[fn.dotted] = sites
                    in_function.update(node for node, _ in sites)
            # sites outside every tracked function run at import time and
            # are therefore reachable unconditionally
            for node, canonical in _unseeded_sites(imports, info.ctx.tree):
                if node not in in_function:
                    yield info.ctx.finding(
                        self.rule_id,
                        node,
                        f"unseeded {canonical}() at module level runs on "
                        f"every import; thread an explicit seed through",
                    )
        if not tainted_fns:
            return
        # reverse reachability from the tainted functions up to any caller;
        # each construction site is reported once, with the first public
        # sink (in sorted order) that can reach it as witness
        parent = graph.reverse_reachable(tainted_fns)
        reported: set[ast.Call] = set()
        for sink, why in sorted(public.items()):
            if sink in tainted_fns:
                tainted, chain = sink, [sink]
            elif sink in parent:
                chain = graph.call_chain(sink, set(tainted_fns), parent)
                tainted = chain[-1]
                if tainted not in tainted_fns:
                    continue
            else:
                continue
            info = graph.modules[graph.functions[tainted].module]
            for node, canonical in tainted_fns[tainted]:
                if node in reported:
                    continue
                reported.add(node)
                rendered = " -> ".join(c.split(".")[-1] for c in chain)
                yield info.ctx.finding(
                    self.rule_id,
                    node,
                    f"unseeded {canonical}() reachable from public surface "
                    f"{sink} ({why}) via {rendered}; thread an explicit "
                    f"seed through",
                )


@register_rule
class WallClockSeedRule(FileRule):
    rule_id = "HB502"
    title = "no wall-clock-seeded generators"
    rationale = (
        "seeding from time.time()/datetime.now() records the seed nowhere, "
        "so a failing campaign, test, or benchmark run can never be "
        "replayed; unlike HB102 this applies outside library code too — a "
        "flaky time-seeded test is exactly as undebuggable as a "
        "time-seeded benchmark"
    )

    fixture_hits = (
        "import random\n"
        "import time\n"
        "rng = random.Random(time.time())\n"
    )
    fixture_clean = (
        "import random\n"
        "rng = random.Random(12345)\n"
    )

    @staticmethod
    def _seed_exprs(node: ast.Call) -> Iterator[ast.expr]:
        yield from node.args
        for kw in node.keywords:
            if kw.arg in ("seed", "x"):
                yield kw.value

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical not in _SEEDABLE:
                continue
            for seed in self._seed_exprs(node):
                for sub in ast.walk(seed):
                    if (
                        isinstance(sub, ast.Call)
                        and imports.resolve(sub.func) in _WALL_CLOCK
                    ):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"{canonical}() seeded from the wall clock; the "
                            f"effective seed is unrecorded, so the run can "
                            f"never be replayed — use an explicit constant "
                            f"or derived seed",
                        )
