"""Determinism rules (HB1xx).

Every artefact this repo emits — BENCH JSON files, campaign curves, figure
tables — must be byte-reproducible from a seed, because the paper's claims
(degree ``m+4`` regularity, ``m+3`` fault tolerance, Figure 1/2 numbers)
are verified by diffing regenerated outputs.  These rules ban the three
classic leaks: ambient RNG state, wall-clock reads, and unordered-set
iteration feeding serialisation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.reprolint.context import FileContext
from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import FileRule, ImportMap

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "JsonSortKeysRule",
    "SetIterationOrderRule",
    "EntropySourceRule",
]

#: constructors on the random / numpy.random modules that take a seed and
#: therefore are the *sanctioned* way to get randomness
_SEEDABLE_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}


def _is_module_rng_call(canonical: str) -> bool:
    if canonical in _SEEDABLE_CONSTRUCTORS:
        return False
    return canonical.startswith(("random.", "numpy.random."))


@register_rule
class UnseededRandomRule(FileRule):
    rule_id = "HB101"
    title = "no module-level RNG calls"
    rationale = (
        "calls like random.shuffle() or numpy.random.rand() draw from hidden "
        "global state, so campaign/benchmark artefacts stop being a pure "
        "function of their declared seed; construct random.Random(seed) or "
        "numpy.random.default_rng(seed) and pass it down"
    )

    fixture_hits = (
        "import random\n"
        "import numpy as np\n"
        "x = random.random()\n"
        "random.seed(7)\n"
        "y = np.random.rand(3)\n"
    )
    fixture_clean = (
        "import random\n"
        "import numpy as np\n"
        "rng = random.Random(7)\n"
        "gen = np.random.default_rng(7)\n"
        "x = rng.random()\n"
        "y = gen.random(3)\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical and _is_module_rng_call(canonical):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"module-level RNG call {canonical}() draws from global "
                    f"state; use a seeded random.Random / "
                    f"numpy.random.default_rng instance",
                )


@register_rule
class WallClockRule(FileRule):
    rule_id = "HB102"
    title = "no wall-clock reads in library code"
    rationale = (
        "time.time() / datetime.now() timestamps leak into campaign and "
        "benchmark JSON, breaking byte-for-byte reproducibility of emitted "
        "artefacts; time.perf_counter() (monotonic interval timing) stays "
        "legal for measuring durations"
    )

    _FORBIDDEN = {
        "time.time": "time.time()",
        "time.time_ns": "time.time_ns()",
        "datetime.datetime.now": "datetime.now()",
        "datetime.datetime.utcnow": "datetime.utcnow()",
        "datetime.datetime.today": "datetime.today()",
        "datetime.date.today": "date.today()",
    }

    fixture_hits = (
        "import time\n"
        "import datetime\n"
        "stamp = time.time()\n"
        "when = datetime.datetime.now()\n"
    )
    fixture_clean = (
        "import time\n"
        "elapsed_start = time.perf_counter()\n"
        "elapsed = time.perf_counter() - elapsed_start\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical in self._FORBIDDEN:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"wall-clock read {self._FORBIDDEN[canonical]} in library "
                    f"code; emitted artefacts must be reproducible from their "
                    f"seed (use perf_counter for durations)",
                )


@register_rule
class JsonSortKeysRule(FileRule):
    rule_id = "HB103"
    title = "json.dump(s) must pin key order"
    rationale = (
        "benchmark artefacts (BENCH_*.json) are diffed across runs and "
        "machines; without sort_keys=True the serialised key order follows "
        "dict insertion history, so refactors churn the artefact"
    )

    fixture_hits = (
        "import json\n"
        "text = json.dumps({'b': 1, 'a': 2})\n"
    )
    fixture_clean = (
        "import json\n"
        "text = json.dumps({'b': 1, 'a': 2}, sort_keys=True)\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical not in ("json.dump", "json.dumps"):
                continue
            sort_kw = next(
                (kw for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            if sort_kw is None:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{canonical.split('.', 1)[1]}() without sort_keys=True; "
                    f"artefact key order must not depend on dict insertion "
                    f"history",
                )
            elif (
                isinstance(sort_kw.value, ast.Constant)
                and sort_kw.value.value is False
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "sort_keys=False explicitly unpins JSON key order",
                )


@register_rule
class SetIterationOrderRule(FileRule):
    rule_id = "HB104"
    title = "no order-dependent iteration over fresh sets"
    rationale = (
        "iterating a set literal / set(...) call, or materialising one with "
        "list()/tuple(), produces hash-seed-dependent order; sort first "
        "(sorted(...)) when the order can reach output, sampling, or "
        "serialisation"
    )

    fixture_hits = (
        "items = list(set([3, 1, 2]))\n"
        "for x in {'b', 'a'}:\n"
        "    print(x)\n"
    )
    fixture_clean = (
        "items = sorted(set([3, 1, 2]))\n"
        "for x in sorted({'b', 'a'}):\n"
        "    print(x)\n"
        "present = 3 in {1, 2, 3}\n"
    )

    @staticmethod
    def _is_fresh_set(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and self._is_fresh_set(node.iter):
                yield ctx.finding(
                    self.rule_id,
                    node.iter,
                    "for-loop over an unordered fresh set; wrap in sorted() "
                    "if order can become observable",
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if self._is_fresh_set(gen.iter):
                        yield ctx.finding(
                            self.rule_id,
                            gen.iter,
                            "comprehension over an unordered fresh set; wrap "
                            "in sorted() if order can become observable",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and self._is_fresh_set(node.args[0])
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{node.func.id}(set(...)) materialises hash-order; use "
                    f"sorted(...) instead",
                )


@register_rule
class EntropySourceRule(FileRule):
    rule_id = "HB105"
    title = "no unseedable entropy sources"
    rationale = (
        "uuid4 / os.urandom / secrets / random.SystemRandom cannot be seeded "
        "at all, so no suppression-free use can ever be reproducible; derive "
        "identifiers from the experiment's declared seed instead"
    )

    _FORBIDDEN_PREFIXES = ("secrets.",)
    _FORBIDDEN = {"uuid.uuid4", "os.urandom", "random.SystemRandom"}

    fixture_hits = (
        "import uuid\n"
        "import os\n"
        "run_id = uuid.uuid4()\n"
        "blob = os.urandom(16)\n"
    )
    fixture_clean = (
        "import uuid\n"
        "run_id = uuid.UUID(int=42)\n"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical is None:
                continue
            if canonical in self._FORBIDDEN or canonical.startswith(
                self._FORBIDDEN_PREFIXES
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{canonical}() is unseedable entropy; derive values from "
                    f"the experiment seed",
                )
