"""Symbolic verification rules (HB8xx).

These rules *execute* the linted kernels instead of pattern-matching
them: the :class:`~repro.devtools.reprolint.verification.VerificationIndex`
builds each invariant-spec family symbolically (through
:mod:`~repro.devtools.reprolint.symexec`, never by importing the linted
code) and sweeps small parameter points exhaustively.  A finding is
always a *definite counterexample* — a concrete index, label, or vertex
that violates a paper invariant; anything outside the executor's modelled
subset is skipped here and covered at runtime by ``hyperbutterfly
prove``.

* HB801 — codec rank/unrank is not a bijection on ``[0, N)``
* HB802 — scalar neighbor relation is asymmetric (graphs are undirected)
* HB803 — vertex degree deviates from the paper formula in the spec
* HB804 — a self-loop or invalid/out-of-range neighbor label is reachable
* HB805 — ``neighbors_block`` row order diverges from scalar ``neighbors``
* HB806 — codec-registered family with no invariant spec registered
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.reprolint.findings import Finding
from repro.devtools.reprolint.registry import register_rule
from repro.devtools.reprolint.rules.base import ProjectRule

if TYPE_CHECKING:
    from repro.devtools.reprolint.context import ProjectContext

__all__ = [
    "CodecBijectivityRule",
    "NeighborSymmetryRule",
    "DegreeFormulaRule",
    "LabelSafetyRule",
    "ScalarBlockAgreementRule",
    "MissingInvariantSpecRule",
]


def _fmt_witness(witness: dict) -> str:
    parts = [f"{k}={v}" for k, v in witness.items() if k not in ("family", "params")]
    point = ",".join(str(p) for p in witness.get("params", []))
    return f"{witness['family']}({point}): " + ", ".join(parts)


# -- shared fixture sources -------------------------------------------------
#
# A minimal self-contained family ("Ringlet", a k-cycle): topology, codec,
# factory, and spec registration.  Each rule's hit fixture breaks exactly
# the invariant that rule owns; the clean fixture is the correct family.

_TOPOLOGY_OK = (
    "class Ringlet:\n"
    "    def __init__(self, k):\n"
    "        self.k = k\n"
    "    @property\n"
    "    def num_nodes(self):\n"
    "        return self.k\n"
    "    def nodes(self):\n"
    "        return iter(range(self.k))\n"
    "    def has_node(self, v):\n"
    "        return isinstance(v, int) and 0 <= v < self.k\n"
    "    def neighbors(self, v):\n"
    "        return [(v + 1) % self.k, (v - 1) % self.k]\n"
)

_SPEC_OK = (
    "register_invariants(\n"
    "    InvariantSpec(\n"
    "        family='Ringlet', params=('k',), build=Ringlet,\n"
    "        small=((5,),), degree='2',\n"
    "    )\n"
    ")\n"
)

_CODEC_OK = (
    "class RingletCodec:\n"
    "    def __init__(self, k):\n"
    "        self.k = k\n"
    "        self.num_nodes = k\n"
    "    def rank(self, label):\n"
    "        return label\n"
    "    def unrank(self, idx):\n"
    "        return idx\n"
    "    def supports_implicit(self):\n"
    "        return True\n"
    "    def neighbors_block(self, idx):\n"
    "        return [(idx + 1) % self.k, (idx - 1) % self.k]\n"
    "\n"
    "def _ringlet_factory(t):\n"
    "    return RingletCodec(t.k)\n"
    "\n"
    "register_codec('Ringlet', _ringlet_factory)\n"
)

_TOPO_PATH = "src/repro/topologies/ringlet.py"
_CODEC_PATH = "src/repro/fastgraph/ringletcodec.py"

_CLEAN_PROJECT = {
    _TOPO_PATH: _TOPOLOGY_OK + "\n" + _SPEC_OK,
    _CODEC_PATH: _CODEC_OK,
}


@register_rule
class CodecBijectivityRule(ProjectRule):
    rule_id = "HB801"
    title = "codec rank/unrank is not a bijection on [0, num_nodes)"
    rationale = (
        "the fastgraph backend identifies vertices with their ranks; a "
        "non-bijective codec silently merges or drops vertices, corrupting "
        "every CSR build and BFS sweep downstream — the witness is a "
        "concrete index whose unrank/rank round trip fails"
    )

    fixture_hits = {
        _TOPO_PATH: _TOPOLOGY_OK + "\n" + _SPEC_OK,
        _CODEC_PATH: _CODEC_OK.replace(
            "    def rank(self, label):\n        return label\n",
            "    def rank(self, label):\n        return label % (self.k - 1)\n",
        ),
    }
    fixture_clean = _CLEAN_PROJECT

    def check_project(self, ctx: "ProjectContext") -> Iterator[Finding]:
        index = ctx.verification
        for family in sorted(index.specs):
            spec = index.specs[family]
            fctx = ctx.by_module(spec.module)
            if fctx is None:
                continue
            for point in index.lint_points(spec):
                for witness in index.check_bijectivity(spec, point):
                    yield fctx.finding(
                        self.rule_id,
                        spec.lineno,
                        f"codec round trip broken — {_fmt_witness(witness)}",
                    )


@register_rule
class NeighborSymmetryRule(ProjectRule):
    rule_id = "HB802"
    title = "scalar neighbor relation is asymmetric"
    rationale = (
        "every topology in the paper is an undirected graph: u in N(v) "
        "must imply v in N(u); an asymmetric generator breaks BFS distance "
        "symmetry and the fault-tolerance bounds of Section 3"
    )

    fixture_hits = {
        _TOPO_PATH: _TOPOLOGY_OK.replace(
            "        return [(v + 1) % self.k, (v - 1) % self.k]\n",
            "        return [(v + 1) % self.k]\n",
        )
        + "\n"
        + _SPEC_OK.replace("degree='2'", "degree='1'"),
    }
    fixture_clean = {_TOPO_PATH: _TOPOLOGY_OK + "\n" + _SPEC_OK}

    def check_project(self, ctx: "ProjectContext") -> Iterator[Finding]:
        index = ctx.verification
        for family in sorted(index.specs):
            spec = index.specs[family]
            fctx = ctx.by_module(spec.module)
            if fctx is None:
                continue
            for point in index.lint_points(spec):
                for witness in index.check_neighbor_symmetry(spec, point):
                    yield fctx.finding(
                        self.rule_id,
                        spec.lineno,
                        f"asymmetric adjacency — {_fmt_witness(witness)}",
                    )


@register_rule
class DegreeFormulaRule(ProjectRule):
    rule_id = "HB803"
    title = "vertex degree deviates from the paper formula"
    rationale = (
        "the degree formulas (m for H_m, 4 for B_n, m+4 for HB(m,n) — "
        "Theorem 2(1)) are load-bearing: fault-tolerance equals degree for "
        "optimally fault-tolerant graphs, so a degree drift invalidates "
        "Corollary 1; the spec's degree expression is checked against an "
        "exhaustive sweep"
    )

    fixture_hits = {
        _TOPO_PATH: _TOPOLOGY_OK + "\n" + _SPEC_OK.replace("degree='2'", "degree='3'"),
    }
    fixture_clean = {_TOPO_PATH: _TOPOLOGY_OK + "\n" + _SPEC_OK}

    def check_project(self, ctx: "ProjectContext") -> Iterator[Finding]:
        index = ctx.verification
        for family in sorted(index.specs):
            spec = index.specs[family]
            fctx = ctx.by_module(spec.module)
            if fctx is None:
                continue
            for point in index.lint_points(spec):
                for witness in index.check_degree_formula(spec, point):
                    yield fctx.finding(
                        self.rule_id,
                        spec.lineno,
                        f"degree mismatch — {_fmt_witness(witness)}",
                    )


@register_rule
class LabelSafetyRule(ProjectRule):
    rule_id = "HB804"
    title = "self-loop or invalid neighbor label is reachable"
    rationale = (
        "a neighbor generator that can emit the vertex itself or a label "
        "outside the vertex set produces phantom edges in the CSR build "
        "and corrupts fault simulations (a faulty phantom node is "
        "unreachable by definition); simple graphs have neither"
    )

    fixture_hits = {
        _TOPO_PATH: _TOPOLOGY_OK.replace(
            "        return [(v + 1) % self.k, (v - 1) % self.k]\n",
            "        return [(v + 1) % self.k, v]\n",
        )
        + "\n"
        + _SPEC_OK,
    }
    fixture_clean = {_TOPO_PATH: _TOPOLOGY_OK + "\n" + _SPEC_OK}

    def check_project(self, ctx: "ProjectContext") -> Iterator[Finding]:
        index = ctx.verification
        for family in sorted(index.specs):
            spec = index.specs[family]
            fctx = ctx.by_module(spec.module)
            if fctx is None:
                continue
            for point in index.lint_points(spec):
                for witness in index.check_label_safety(spec, point):
                    yield fctx.finding(
                        self.rule_id,
                        spec.lineno,
                        f"unsafe neighbor label — {_fmt_witness(witness)}",
                    )


@register_rule
class ScalarBlockAgreementRule(ProjectRule):
    rule_id = "HB805"
    title = "neighbors_block diverges from scalar neighbors"
    rationale = (
        "the implicit BFS backend trusts neighbors_block rows to be the "
        "ranked scalar adjacency in exact order (padding aside); a "
        "divergent vectorised kernel silently changes the graph the exact "
        "sweeps explore, which no runtime assertion would catch"
    )

    fixture_hits = {
        _TOPO_PATH: _TOPOLOGY_OK + "\n" + _SPEC_OK,
        _CODEC_PATH: _CODEC_OK.replace(
            "        return [(idx + 1) % self.k, (idx - 1) % self.k]\n",
            "        return [(idx - 1) % self.k, (idx + 1) % self.k]\n",
        ),
    }
    fixture_clean = _CLEAN_PROJECT

    def check_project(self, ctx: "ProjectContext") -> Iterator[Finding]:
        index = ctx.verification
        for family in sorted(index.specs):
            spec = index.specs[family]
            fctx = ctx.by_module(spec.module)
            if fctx is None:
                continue
            for point in index.lint_points(spec):
                for witness in index.check_scalar_block_agreement(spec, point):
                    yield fctx.finding(
                        self.rule_id,
                        spec.lineno,
                        f"block/scalar divergence — {_fmt_witness(witness)}",
                    )


@register_rule
class MissingInvariantSpecRule(ProjectRule):
    rule_id = "HB806"
    title = "codec-registered family has no invariant spec"
    rationale = (
        "a family in the codec registry without a matching "
        "register_invariants entry is invisible to both the HB80x sweeps "
        "and `hyperbutterfly prove` — its paper invariants are simply "
        "never checked; register a spec (or remove the codec)"
    )

    fixture_hits = {
        _CODEC_PATH: _CODEC_OK,  # codec registered, no spec anywhere
    }
    fixture_clean = _CLEAN_PROJECT

    def check_project(self, ctx: "ProjectContext") -> Iterator[Finding]:
        index = ctx.verification
        for reg in index.families_missing_specs():
            fctx = ctx.by_module(reg.module)
            if fctx is None:
                continue
            yield fctx.finding(
                self.rule_id,
                reg.lineno,
                f"family {reg.family!r} is codec-registered but has no "
                f"invariant spec — its paper invariants are never verified",
            )
