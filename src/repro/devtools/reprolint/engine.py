"""The lint engine: file collection, rule dispatch, baselines, self-test.

Two entry points:

* :func:`lint_paths` — lint files/directories on disk (what the CLI runs);
* :func:`lint_sources` — lint an in-memory ``{path: source}`` mapping
  (what the fixture tests and the per-rule self-test run).

Findings are never silently dropped: suppressed and baselined findings
stay in the report flagged as such, and only *active* findings drive the
non-zero exit code.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError

from repro.devtools.reprolint.baseline import load_baseline
from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.findings import Finding, Severity
from repro.devtools.reprolint.registry import all_rules
from repro.devtools.reprolint.rules.base import FileRule, ProjectRule, Rule

__all__ = [
    "LintReport",
    "SelfTestError",
    "lint_paths",
    "lint_sources",
    "self_test",
    "self_test_rule",
]

#: pseudo-rule id for files the engine cannot parse
PARSE_ERROR_ID = "HB000"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


class SelfTestError(ReproError):
    """A rule failed its own fixture self-test."""


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    rules_run: int = 0

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "checked_files": self.checked_files,
            "rules_run": self.rules_run,
            "counts": self.counts_by_rule(),
            "findings": [f.to_dict() for f in self.findings],
        }


def _sorted_findings(findings: Iterable[Finding]) -> list[Finding]:
    return sorted(findings, key=Finding.sort_key)


def _run_rules(
    contexts: Sequence[FileContext],
    parse_failures: Sequence[Finding],
    rules: Sequence[Rule],
) -> LintReport:
    findings: list[Finding] = list(parse_failures)
    project_ctx = ProjectContext(files=list(contexts))
    for rule in rules:
        if isinstance(rule, FileRule):
            for ctx in contexts:
                findings.extend(rule.check_file(ctx))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project_ctx))
    return LintReport(
        findings=_sorted_findings(findings),
        checked_files=len(contexts),
        rules_run=len(rules),
    )


def _apply_baseline(report: LintReport, fingerprints: frozenset[str]) -> LintReport:
    if not fingerprints:
        return report
    report.findings = [
        Finding(
            rule_id=f.rule_id,
            path=f.path,
            line=f.line,
            col=f.col,
            message=f.message,
            severity=f.severity,
            line_text=f.line_text,
            suppressed=f.suppressed,
            baselined=f.fingerprint in fingerprints,
        )
        for f in report.findings
    ]
    return report


#: immutable empty default for ``lint_sources`` (no call in the signature)
_NO_BASELINE: frozenset[str] = frozenset()


def lint_sources(
    sources: Mapping[str, str],
    *,
    rules: Sequence[Rule] | None = None,
    baseline_fingerprints: frozenset[str] = _NO_BASELINE,
) -> LintReport:
    """Lint an in-memory ``{path: source}`` mapping."""
    contexts: list[FileContext] = []
    parse_failures: list[Finding] = []
    for path in sorted(sources):
        try:
            contexts.append(
                FileContext.from_source(path, _normalize_source(sources[path]))
            )
        except SyntaxError as exc:
            parse_failures.append(
                Finding(
                    rule_id=PARSE_ERROR_ID,
                    path=str(PurePosixPath(path)),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    severity=Severity.ERROR,
                    line_text=(exc.text or "").rstrip("\n"),
                )
            )
    report = _run_rules(contexts, parse_failures, rules or all_rules())
    return _apply_baseline(report, baseline_fingerprints)


def _normalize_source(source: str) -> str:
    """Collapse CRLF/CR line endings to LF.

    Finding fingerprints hash the flagged line's text; without this a
    Windows checkout (or ``core.autocrlf``) would produce different
    fingerprints for byte-identical code and silently invalidate a shared
    ``.reprolint-baseline.json``.
    """
    return source.replace("\r\n", "\n").replace("\r", "\n")


#: files whose presence marks the repository root for display paths
_ROOT_MARKERS = ("pyproject.toml", ".git")


def _repo_root(start: Path) -> Path | None:
    for candidate in (start, *start.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return None


def _collect_files(paths: Sequence[str | Path]) -> list[Path]:
    collected: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    collected.append(candidate)
        elif path.suffix == ".py" and path.exists():
            collected.append(path)
        elif not path.exists():
            raise ReproError(f"lint path does not exist: {path}")
    # de-duplicate while keeping order (a file given twice counts once)
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in collected:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    """Stable display form: repo-root-relative POSIX, independent of cwd.

    Fingerprints hash this path, so it must not vary with where the linter
    was invoked from.  Preference order: relative to the repository root
    (nearest ancestor holding a root marker), then relative to the cwd,
    then absolute — always with forward slashes.
    """
    resolved = path.resolve()
    root = _repo_root(resolved.parent)
    if root is not None:
        try:
            return resolved.relative_to(root).as_posix()
        except ValueError:  # pragma: no cover - resolve() makes this unlikely
            pass
    try:
        relative = os.path.relpath(path)
    except ValueError:  # different drive (windows) — keep absolute
        relative = str(path)
    if not relative.startswith(".."):
        return PurePosixPath(Path(relative).as_posix()).as_posix()
    return path.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    baseline_path: str | Path | None = None,
) -> LintReport:
    """Lint files and directories on disk (the CLI entry point)."""
    fingerprints = (
        load_baseline(baseline_path) if baseline_path is not None else frozenset()
    )
    sources: dict[str, str] = {}
    for path in _collect_files(paths):
        sources[_display_path(path)] = path.read_text(encoding="utf-8")
    return lint_sources(
        sources, rules=rules, baseline_fingerprints=fingerprints
    )


# -- per-rule fixture self-test ---------------------------------------------

_FIXTURE_HIT_PATH = "src/repro/_reprolint_fixture.py"
_FIXTURE_CLEAN_PATH = "src/repro/_reprolint_fixture_clean.py"


def _as_sources(fixture: str | Mapping[str, str], default_path: str) -> dict[str, str]:
    if isinstance(fixture, str):
        return {default_path: fixture}
    return dict(fixture)


def _suppress_lines(source: str, rule_id: str, lines: set[int]) -> str:
    out = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        if lineno in lines:
            text = f"{text}  # reprolint: disable={rule_id} -- self-test"
        out.append(text)
    return "\n".join(out) + "\n"


def self_test_rule(rule: Rule) -> None:
    """Run one rule against its own fixtures.

    Checks three properties:

    1. ``fixture_hits`` produces at least one active finding of that rule;
    2. ``fixture_clean`` produces none;
    3. appending an inline suppression to every flagged line of
       ``fixture_hits`` turns every finding inactive (suppression works).

    Raises :class:`SelfTestError` on the first violated property.
    """
    hits = _as_sources(rule.fixture_hits, _FIXTURE_HIT_PATH)
    clean = _as_sources(rule.fixture_clean, _FIXTURE_CLEAN_PATH)
    if not hits or not clean:
        raise SelfTestError(f"{rule.rule_id} is missing self-test fixtures")

    hit_report = lint_sources(hits, rules=[rule])
    mine = [f for f in hit_report.active if f.rule_id == rule.rule_id]
    if not mine:
        raise SelfTestError(f"{rule.rule_id} fixture_hits produced no findings")

    clean_report = lint_sources(clean, rules=[rule])
    if clean_report.active:
        raise SelfTestError(
            f"{rule.rule_id} fixture_clean produced findings: "
            f"{[f.render() for f in clean_report.active]}"
        )

    suppressed_sources = {
        path: _suppress_lines(
            text,
            rule.rule_id,
            {f.line for f in mine if f.path == str(PurePosixPath(path))},
        )
        for path, text in hits.items()
    }
    suppressed_report = lint_sources(suppressed_sources, rules=[rule])
    still_active = [
        f for f in suppressed_report.active if f.rule_id == rule.rule_id
    ]
    if still_active:
        raise SelfTestError(
            f"{rule.rule_id} inline suppression failed: "
            f"{[f.render() for f in still_active]}"
        )


def self_test(rules: Sequence[Rule] | None = None) -> int:
    """Run every rule's fixture self-test; returns the rule count.

    See :func:`self_test_rule` for the per-rule contract.  Raises
    :class:`SelfTestError` on the first violation.
    """
    rules = list(rules or all_rules())
    for rule in rules:
        self_test_rule(rule)
    return len(rules)
