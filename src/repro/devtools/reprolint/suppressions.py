"""Inline suppression comments.

Two forms are recognised, mirroring the conventions of flake8/pylint:

* line level — append ``# reprolint: disable=HB101`` (or a
  comma-separated list, or ``all``) to the offending line;
* file level — a comment line ``# reprolint: disable-file=HB203`` anywhere
  at column 0 in the first 20 lines silences a rule for the whole file.

Suppressions are *visible* in reports (findings are marked, not dropped),
so a reviewer can grep for what has been waived and why — the convention
in this repo is that every suppression carries a trailing justification,
e.g. ``# reprolint: disable=HB301 -- exact float round-trip is the point``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s\*]+?)(?:\s*--.*)?$"
)
_FILE_RE = re.compile(
    r"^#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\s\*]+?)(?:\s*--.*)?$"
)

#: how far into a file a ``disable-file`` pragma is honoured
_FILE_PRAGMA_WINDOW = 20


def _parse_ids(raw: str) -> frozenset[str]:
    return frozenset(
        token.strip().upper() for token in raw.split(",") if token.strip()
    )


@dataclass
class SuppressionIndex:
    """Per-file map of which rule ids are disabled where."""

    #: line number (1-based) -> rule ids disabled on that line
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file
    file_wide: frozenset[str] = frozenset()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        for ids in (self.file_wide, self.by_line.get(line, frozenset())):
            if rule_id in ids or "ALL" in ids or "*" in ids:
                return True
        return False


def scan_suppressions(source_lines: list[str]) -> SuppressionIndex:
    """Build the :class:`SuppressionIndex` for one file's source lines."""
    index = SuppressionIndex()
    file_wide: set[str] = set()
    for lineno, text in enumerate(source_lines, start=1):
        if lineno <= _FILE_PRAGMA_WINDOW:
            file_match = _FILE_RE.match(text.strip())
            if file_match:
                file_wide |= _parse_ids(file_match.group(1))
                continue
        line_match = _LINE_RE.search(text)
        if line_match:
            index.by_line[lineno] = _parse_ids(line_match.group(1))
    index.file_wide = frozenset(file_wide)
    return index
