"""Baseline files: grandfathered findings that do not fail CI.

A baseline is a sorted JSON document of finding fingerprints.  The shipped
repository baseline (``.reprolint-baseline.json``) is **empty** — CI starts
strict — but the mechanism exists so a future rule can land before its
violations are burned down, without a flag day.

Fingerprints hash the offending line's text rather than its number, so a
baseline survives unrelated edits but expires as soon as the flagged line
changes (see :mod:`repro.devtools.reprolint.findings`).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

from repro.devtools.reprolint.findings import Finding

__all__ = ["BaselineError", "load_baseline", "write_baseline", "DEFAULT_BASELINE"]

#: conventional repository-root baseline filename
DEFAULT_BASELINE = ".reprolint-baseline.json"

_VERSION = 1


class BaselineError(ReproError):
    """A baseline file is missing or malformed."""


def load_baseline(path: str | Path) -> frozenset[str]:
    """Read the set of grandfathered fingerprints from ``path``."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(
            f"baseline file {path} has unsupported shape (want version {_VERSION})"
        )
    fingerprints = payload.get("fingerprints", [])
    if not isinstance(fingerprints, list) or not all(
        isinstance(fp, str) for fp in fingerprints
    ):
        raise BaselineError(f"baseline file {path}: 'fingerprints' must be strings")
    return frozenset(fingerprints)


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Write every *active* finding's fingerprint to ``path``; returns count.

    Output is sorted and newline-terminated so regeneration is diff-stable.
    """
    fingerprints = sorted({f.fingerprint for f in findings if f.active})
    payload = {"version": _VERSION, "fingerprints": fingerprints}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(fingerprints)
