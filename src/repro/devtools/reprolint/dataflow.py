"""Abstract dtype/bit-width dataflow over function bodies (HB6xx backbone).

The earlier rule blocks judge AST *shapes*; the numerics that matter in
``fastgraph/`` are *flows*.  A packed ``(butterfly, hypercube)`` label
survives shifts and masks only while every operand stays unsigned and
every shift count stays below the word width — and numpy's promotion
rules make violations silent: ``uint64 | int64`` promotes to ``float64``
(exactness gone past 2^53), ``uint8 @ uint8`` accumulates *in uint8*
(counts wrap at 256), ``arr.sum()`` on a narrow int accumulates in the
platform integer.  None of that is visible to a shape rule, because the
dtype lives in an assignment three lines up or in a helper's return.

This module is a small intraprocedural abstract interpreter:

* :class:`DType` / :class:`Value` — the abstract lattice: numpy dtypes
  (signedness, bit width, platform-dependence), weak python numbers with
  known constants (shift counts!), and a "packed" provenance bit that
  shift/mask arithmetic propagates;
* :func:`promote_dtypes` / :func:`promote_values` — a NEP-50-shaped
  promotion table (weak python scalars adopt the array dtype; mixing
  ``uint64`` with any signed int is the ``float64`` hazard);
* :func:`analyze_module` — one linear pass per function body (no
  fixpoint: loop bodies run once, branches join), resolving a curated
  table of numpy constructors/ufuncs/methods (``zeros``/``astype``/
  ``left_shift``/``bitwise_*``/gather indexing/``sum`` accumulators) and
  ``self.<attr>`` values seeded from ``__init__``;
* :class:`ProjectDataflow` — the per-lint-run cache handed to rules via
  ``ProjectContext.dataflow``, which also resolves calls to
  statically-known project helpers through the
  :class:`~repro.devtools.reprolint.project.ProjectGraph` call machinery
  and summarises their return values.

Everything is deliberately conservative: any construct outside the table
evaluates to :data:`UNKNOWN`, so rules built on top under-approximate —
every reported dtype is one the interpreter actually derived.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.devtools.reprolint.rules.base import ImportMap

if TYPE_CHECKING:  # deferred: context.py imports us lazily
    from repro.devtools.reprolint.context import FileContext, ProjectContext

__all__ = [
    "DType",
    "Value",
    "UNKNOWN",
    "dtype_from_name",
    "promote_dtypes",
    "promote_values",
    "accumulator_dtype",
    "ModuleAnalysis",
    "analyze_module",
    "ProjectDataflow",
]


@dataclass(frozen=True)
class DType:
    """One numpy dtype: kind (``b``/``i``/``u``/``f``), width, platformness."""

    name: str
    kind: str
    bits: int
    #: True for width-follows-the-platform aliases (``int_``, ``intp``, the
    #: default int of ``arange``/``sum`` accumulators, ...)
    platform: bool = False

    @property
    def is_int(self) -> bool:
        return self.kind in ("i", "u")

    def __str__(self) -> str:
        return self.name


def _fixed(kind: str, bits: int) -> DType:
    return DType(f"{'uint' if kind == 'u' else 'int' if kind == 'i' else 'float'}{bits}", kind, bits)


BOOL = DType("bool", "b", 8)
#: numpy's default integer — 64-bit on every supported platform today, but
#: an alias whose width the platform owns, which is exactly what HB604 flags
INT_DEFAULT = DType("int_", "i", 64, platform=True)
UINT_DEFAULT = DType("uint", "u", 64, platform=True)
INTP = DType("intp", "i", 64, platform=True)
FLOAT64 = _fixed("f", 64)

#: canonical name -> DType, covering fixed-width names, platform aliases,
#: and the python builtins accepted as ``dtype=`` arguments
_DTYPES: dict[str, DType] = {
    **{f"int{b}": _fixed("i", b) for b in (8, 16, 32, 64)},
    **{f"uint{b}": _fixed("u", b) for b in (8, 16, 32, 64)},
    **{f"float{b}": _fixed("f", b) for b in (16, 32, 64)},
    "bool": BOOL,
    "bool_": BOOL,
    "half": _fixed("f", 16),
    "single": _fixed("f", 32),
    "double": FLOAT64,
    "float_": FLOAT64,
    "int": INT_DEFAULT,
    "int_": INT_DEFAULT,
    "long": DType("long", "i", 64, platform=True),
    "longlong": DType("longlong", "i", 64),
    "intp": INTP,
    "intc": DType("intc", "i", 32, platform=True),
    "uint": UINT_DEFAULT,
    "ulong": DType("ulong", "u", 64, platform=True),
    "ulonglong": DType("ulonglong", "u", 64),
    "uintp": DType("uintp", "u", 64, platform=True),
    "uintc": DType("uintc", "u", 32, platform=True),
    "float": FLOAT64,
}


def dtype_from_name(name: str) -> DType | None:
    """The :class:`DType` for a canonical numpy/builtin dtype name."""
    return _DTYPES.get(name)


@dataclass(frozen=True)
class Value:
    """One abstract value.

    ``kind`` is ``array``/``scalar`` (numpy, with a known :class:`DType`),
    ``pyint``/``pyfloat``/``pybool`` (weak python scalars, optionally with
    a known constant), or ``unknown``.  ``packed`` marks values built by
    shift/or packing — label provenance for the HB6xx messages.
    """

    kind: str = "unknown"
    dtype: DType | None = None
    const: int | float | None = None
    packed: bool = False

    @property
    def is_strong(self) -> bool:
        """A numpy value whose dtype the interpreter derived."""
        return self.kind in ("array", "scalar") and self.dtype is not None

    @property
    def is_weak(self) -> bool:
        return self.kind in ("pyint", "pyfloat", "pybool")

    def with_dtype(self, dtype: DType) -> "Value":
        kind = self.kind if self.kind == "array" else "scalar"
        return Value(kind, dtype, const=self.const, packed=self.packed)


UNKNOWN = Value()


def promote_dtypes(a: DType, b: DType) -> DType:
    """NEP-50-shaped dtype promotion (the table rules reason about).

    The noteworthy rows: bool defers to anything; same-kind takes the max
    width; float vs int widens the float until the int fits; signed vs
    unsigned widens the signed side — and when the unsigned side is
    already 64-bit there is no wider signed int, so numpy falls back to
    ``float64`` (the exactness hazard HB601 exists for).
    """
    if a.kind == "b":
        return b
    if b.kind == "b":
        return a
    if a.kind == b.kind:
        if a.bits == b.bits:
            return a if not b.platform else b
        return a if a.bits > b.bits else b
    if "f" in (a.kind, b.kind):
        flt, other = (a, b) if a.kind == "f" else (b, a)
        if other.kind == "f":  # pragma: no cover - both float handled above
            return flt
        # a float holds ints of about half its width exactly
        if 2 * other.bits <= flt.bits:
            return flt
        return _fixed("f", max(flt.bits, min(64, 2 * other.bits)))
    signed, unsigned = (a, b) if a.kind == "i" else (b, a)
    if unsigned.bits < signed.bits:
        return signed
    if unsigned.bits >= 64:
        return FLOAT64  # uint64 vs any signed int: no common integer
    return _fixed("i", min(64, 2 * unsigned.bits))


def promote_values(a: Value, b: Value) -> Value:
    """Result of a binary arithmetic/bitwise op between two values."""
    packed = a.packed or b.packed
    if a.is_strong and b.is_strong:
        kind = "array" if "array" in (a.kind, b.kind) else "scalar"
        return Value(kind, promote_dtypes(a.dtype, b.dtype), packed=packed)  # type: ignore[arg-type]
    if a.is_strong or b.is_strong:
        strong, weak = (a, b) if a.is_strong else (b, a)
        if not weak.is_weak:
            return Value(packed=packed)
        assert strong.dtype is not None
        if weak.kind == "pyfloat" and strong.dtype.kind != "f":
            return strong.with_dtype(FLOAT64)
        if strong.dtype.kind == "b" and weak.kind != "pybool":
            return strong.with_dtype(INT_DEFAULT)
        # weak python scalars adopt the array's dtype (NEP 50)
        return Value(strong.kind, strong.dtype, packed=packed)
    if a.is_weak and b.is_weak:
        if "pyfloat" in (a.kind, b.kind):
            return Value("pyfloat", packed=packed)
        return Value("pyint", packed=packed)
    return Value(packed=packed)


def accumulator_dtype(dtype: DType) -> DType:
    """The dtype numpy accumulates ``sum()`` in (no explicit ``dtype=``)."""
    if dtype.kind == "b":
        return INT_DEFAULT
    if dtype.kind == "i" and dtype.bits < 64:
        return INT_DEFAULT
    if dtype.kind == "u" and dtype.bits < 64:
        return UINT_DEFAULT
    return dtype


def join(a: Value, b: Value) -> Value:
    """Branch join: keep what both sides agree on."""
    if a == b:
        return a
    if (
        a.is_strong
        and b.is_strong
        and a.dtype == b.dtype
        and a.kind == b.kind
    ):
        return Value(a.kind, a.dtype, packed=a.packed or b.packed)
    if a.kind == b.kind and a.is_weak:
        return Value(a.kind, packed=a.packed or b.packed)
    return UNKNOWN


#: ufuncs whose result is the promotion of their first two args
_PROMOTING_UFUNCS = frozenset(
    {
        "add",
        "subtract",
        "multiply",
        "floor_divide",
        "mod",
        "remainder",
        "bitwise_and",
        "bitwise_or",
        "bitwise_xor",
        "minimum",
        "maximum",
        "power",
        "hypot",
        "dot",
        "matmul",
    }
)

#: array-in array-out functions that keep their input's dtype
_PASSTHROUGH_FUNCS = frozenset(
    {
        "sort",
        "unique",
        "ravel",
        "copy",
        "ascontiguousarray",
        "flip",
        "roll",
        "repeat",
        "tile",
        "concatenate",
        "abs",
        "absolute",
    }
)

#: methods that keep the receiver's dtype
_PASSTHROUGH_METHODS = frozenset(
    {
        "copy",
        "ravel",
        "flatten",
        "reshape",
        "squeeze",
        "transpose",
        "repeat",
        "take",
        "clip",
        "round",
    }
)

#: functions returning numpy's platform index dtype
_INDEX_FUNCS = frozenset(
    {"argsort", "argmin", "argmax", "flatnonzero", "searchsorted", "bincount"}
)


class _Interpreter:
    """One linear abstract pass over statements of a single module."""

    def __init__(
        self,
        values: dict[int, Value],
        imports: ImportMap,
        call_resolver: Callable[[ast.expr], Value],
    ) -> None:
        self.values = values
        self.imports = imports
        self.call_resolver = call_resolver
        self._returns: list[list[Value]] = []

    # -- statements ----------------------------------------------------------

    def exec_body(self, body: Iterable[ast.stmt], env: dict[str, Value]) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, Value]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env, rhs=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value, env) if stmt.value is not None else UNKNOWN
            self._bind(stmt.target, value, env, rhs=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval(stmt.target, env) if isinstance(
                stmt.target, (ast.Name, ast.Attribute)
            ) else UNKNOWN
            operand = self.eval(stmt.value, env)
            result = self._binop_value(stmt.op, current, operand)
            self._bind(stmt.target, result, env, rhs=None)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env) if stmt.value is not None else UNKNOWN
            if self._returns:
                self._returns[-1].append(value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            branch_a, branch_b = dict(env), dict(env)
            self.exec_body(stmt.body, branch_a)
            self.exec_body(stmt.orelse, branch_b)
            env.clear()
            for key in set(branch_a) | set(branch_b):
                env[key] = join(
                    branch_a.get(key, UNKNOWN), branch_b.get(key, UNKNOWN)
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval(stmt.iter, env)
            self._bind(stmt.target, self._element_of(stmt.iter, iterable), env)
            self.exec_body(stmt.body, env)
            self.exec_body(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            self.exec_body(stmt.body, env)
            self.exec_body(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN, env)
            self.exec_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body, env)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = UNKNOWN
                self.exec_body(handler.body, env)
            self.exec_body(stmt.orelse, env)
            self.exec_body(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = UNKNOWN
            # nested defs see the enclosing env (closures) — run their
            # bodies for value coverage, isolating returns and rebinding
            nested_env = dict(env)
            for arg in _all_args(stmt.args):
                nested_env[arg.arg] = UNKNOWN
            self._returns.append([])
            try:
                self.exec_body(stmt.body, nested_env)
            finally:
                self._returns.pop()
        elif isinstance(stmt, ast.ClassDef):
            env[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test, env)
        # imports, pass, break, continue, raise, global: no value effect

    def _bind(
        self,
        target: ast.expr,
        value: Value,
        env: dict[str, Value],
        rhs: ast.expr | None = None,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            self.values[id(target)] = value
        elif isinstance(target, ast.Attribute):
            self.eval(target.value, env)
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                env[f"self.{target.attr}"] = value
        elif isinstance(target, ast.Subscript):
            # evaluate the container and index so store-site rules
            # (HB603 downcast) can read both sides from the value map
            self.eval(target.value, env)
            self.eval(target.slice, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts: list[ast.expr] | None = None
            if isinstance(rhs, (ast.Tuple, ast.List)) and len(rhs.elts) == len(
                target.elts
            ):
                parts = rhs.elts
            for i, elt in enumerate(target.elts):
                if parts is not None:
                    self._bind(elt, self.values.get(id(parts[i]), UNKNOWN), env)
                else:
                    self._bind(elt, UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN, env)

    def _element_of(self, iter_expr: ast.expr, iterable: Value) -> Value:
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "range"
        ):
            return Value("pyint")
        if iterable.kind == "array" and iterable.dtype is not None:
            return Value("scalar", iterable.dtype, packed=iterable.packed)
        return UNKNOWN

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, Value]) -> Value:
        value = self._eval_inner(node, env)
        self.values[id(node)] = value
        return value

    def _eval_inner(self, node: ast.expr, env: dict[str, Value]) -> Value:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Value("pybool", const=int(node.value))
            if isinstance(node.value, int):
                return Value("pyint", const=node.value)
            if isinstance(node.value, float):
                return Value("pyfloat", const=node.value)
            return UNKNOWN
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            self.eval(node.value, env)
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return env.get(f"self.{node.attr}", UNKNOWN)
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self._binop_value(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                if operand.kind == "pyint" and isinstance(operand.const, int):
                    return Value("pyint", const=-operand.const)
                return operand
            if isinstance(node.op, ast.Not):
                return Value("pybool")
            if isinstance(node.op, ast.Invert):
                return operand  # ~x keeps the dtype (and packedness)
            return operand
        if isinstance(node, ast.BoolOp):
            parts = [self.eval(v, env) for v in node.values]
            result = parts[0]
            for part in parts[1:]:
                result = join(result, part)
            return result
        if isinstance(node, ast.Compare):
            operands = [self.eval(node.left, env)] + [
                self.eval(c, env) for c in node.comparators
            ]
            if any(v.kind == "array" for v in operands):
                return Value("array", BOOL)
            return Value("pybool")
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            self.eval(node.slice, env)
            if base.kind == "array" and base.dtype is not None:
                # gather/slice indexing keeps the dtype; stay "array"
                # (conservative for scalar indexing, which rules tolerate)
                return Value("array", base.dtype, packed=base.packed)
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.eval(elt, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for part in (*node.keys, *node.values):
                if part is not None:
                    self.eval(part, env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            self.eval(node.value, env)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            nested_env = dict(env)
            for arg in _all_args(node.args):
                nested_env[arg.arg] = UNKNOWN
            self._returns.append([])
            try:
                self.eval(node.body, nested_env)
            finally:
                self._returns.pop()
            return UNKNOWN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return UNKNOWN
        return UNKNOWN

    def _binop_value(self, op: ast.operator, left: Value, right: Value) -> Value:
        if isinstance(op, (ast.LShift, ast.RShift)):
            const: int | None = None
            if (
                left.kind == "pyint"
                and right.kind == "pyint"
                and isinstance(left.const, int)
                and isinstance(right.const, int)
                and 0 <= right.const < 512
            ):
                const = (
                    left.const << right.const
                    if isinstance(op, ast.LShift)
                    else left.const >> right.const
                )
            packed = left.packed or right.packed or isinstance(op, ast.LShift)
            if left.is_strong and right.is_strong:
                return Value(
                    "array" if "array" in (left.kind, right.kind) else "scalar",
                    promote_dtypes(left.dtype, right.dtype),  # type: ignore[arg-type]
                    packed=packed,
                )
            if left.is_strong:
                return Value(left.kind, left.dtype, packed=packed)
            if right.is_strong:
                return Value(right.kind, right.dtype, packed=packed)
            if left.kind == "pyint" and right.kind == "pyint":
                return Value("pyint", const=const, packed=packed)
            return Value(packed=packed)
        if isinstance(op, ast.Div):
            result = promote_values(left, right)
            if result.is_strong and result.dtype is not None:
                if result.dtype.kind != "f":
                    return result.with_dtype(FLOAT64)
                return result
            if left.is_weak and right.is_weak:
                return Value("pyfloat")
            return result
        result = promote_values(left, right)
        if (
            result.kind == "pyint"
            and isinstance(left.const, int)
            and isinstance(right.const, int)
        ):
            folded: int | None = None
            if isinstance(op, ast.Add):
                folded = left.const + right.const
            elif isinstance(op, ast.Sub):
                folded = left.const - right.const
            elif isinstance(op, ast.Mult):
                folded = left.const * right.const
            elif isinstance(op, ast.Pow) and 0 <= right.const < 512:
                folded = left.const**right.const
            elif isinstance(op, ast.BitOr):
                folded = left.const | right.const
            elif isinstance(op, ast.BitAnd):
                folded = left.const & right.const
            elif isinstance(op, ast.BitXor):
                folded = left.const ^ right.const
            if folded is not None:
                return Value("pyint", const=folded, packed=result.packed)
        return result

    # -- calls ---------------------------------------------------------------

    def _dtype_of_expr(self, node: ast.expr | None) -> DType | None:
        """Resolve a ``dtype=`` argument expression to a :class:`DType`."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return dtype_from_name(node.value)
        if (
            isinstance(node, ast.Call)
            and (canon := self.imports.resolve(node.func)) is not None
            and canon in ("numpy.dtype", "np.dtype")
            and node.args
        ):
            return self._dtype_of_expr(node.args[0])
        canonical = self.imports.resolve(node)
        if canonical is None:
            return None
        if canonical.startswith("numpy."):
            return dtype_from_name(canonical.rsplit(".", 1)[-1])
        if canonical in ("int", "float", "bool"):
            return dtype_from_name(canonical)
        return None

    def _kwarg(self, node: ast.Call, name: str) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _eval_call(self, node: ast.Call, env: dict[str, Value]) -> Value:
        arg_values = [self.eval(arg, env) for arg in node.args]
        for kw in node.keywords:
            self.eval(kw.value, env)
        # -- method calls on a value we understand
        if isinstance(node.func, ast.Attribute):
            base = self.eval(node.func.value, env)
            method_value = self._eval_method(node, base, arg_values)
            if method_value is not None:
                return method_value
        canonical = self.imports.resolve(node.func)
        if canonical is not None:
            numpy_value = self._eval_numpy(node, canonical, arg_values)
            if numpy_value is not None:
                return numpy_value
            builtin_value = self._eval_builtin(canonical, arg_values)
            if builtin_value is not None:
                return builtin_value
        return self.call_resolver(node.func)

    def _eval_method(
        self, node: ast.Call, base: Value, args: list[Value]
    ) -> Value | None:
        assert isinstance(node.func, ast.Attribute)
        method = node.func.attr
        if method in ("astype", "view"):
            # the target dtype alone fixes the result, even when the
            # receiver (e.g. an unannotated parameter) is unknown
            dtype = self._dtype_of_expr(
                node.args[0] if node.args else self._kwarg(node, "dtype")
            )
            if dtype is not None:
                kind = base.kind if base.is_strong else "array"
                return Value(kind, dtype, packed=base.packed)
            return UNKNOWN
        if not base.is_strong or base.dtype is None:
            return None
        if method == "sum":
            dtype = self._dtype_of_expr(self._kwarg(node, "dtype"))
            if dtype is None:
                dtype = accumulator_dtype(base.dtype)
            return Value("scalar", dtype, packed=base.packed)
        if method in ("dot", "matmul"):
            if args:
                return promote_values(base, args[0])
            return UNKNOWN
        if method in _PASSTHROUGH_METHODS:
            return Value(base.kind, base.dtype, packed=base.packed)
        if method in ("min", "max", "item"):
            return Value("scalar", base.dtype, packed=base.packed)
        if method in ("any", "all"):
            return Value("scalar", BOOL)
        if method in ("mean", "std", "var"):
            dtype = base.dtype if base.dtype.kind == "f" else FLOAT64
            return Value("scalar", dtype)
        if method in ("argsort", "argmin", "argmax", "searchsorted"):
            return Value("array", INTP)
        return None

    def _eval_numpy(
        self, node: ast.Call, canonical: str, args: list[Value]
    ) -> Value | None:
        if not canonical.startswith("numpy."):
            return None
        tail = canonical.rsplit(".", 1)[-1]
        dtype = dtype_from_name(tail)
        if dtype is not None:
            # np.uint64(x): scalar/array cast keeping constness/packedness
            src = args[0] if args else Value("pyint", const=0)
            kind = "array" if src.kind == "array" else "scalar"
            return Value(kind, dtype, const=src.const, packed=src.packed)
        if tail in ("zeros", "ones", "empty", "full"):
            explicit = self._dtype_of_expr(self._kwarg(node, "dtype"))
            if explicit is None and tail != "full" and len(node.args) > 1:
                explicit = self._dtype_of_expr(node.args[1])
            if explicit is None and tail == "full":
                explicit = self._dtype_of_expr(
                    node.args[2] if len(node.args) > 2 else None
                )
                if explicit is None and len(args) > 1:
                    fill = args[1]
                    if fill.is_strong:
                        explicit = fill.dtype
                    elif fill.kind == "pyint":
                        explicit = INT_DEFAULT
                    elif fill.kind == "pyfloat":
                        explicit = FLOAT64
            if explicit is None and tail != "full":
                explicit = FLOAT64
            if explicit is None:
                return UNKNOWN
            return Value("array", explicit)
        if tail in ("zeros_like", "ones_like", "empty_like", "full_like"):
            explicit = self._dtype_of_expr(self._kwarg(node, "dtype"))
            if explicit is not None:
                return Value("array", explicit)
            if args and args[0].is_strong and args[0].dtype is not None:
                return Value("array", args[0].dtype)
            return UNKNOWN
        if tail in ("array", "asarray", "asanyarray", "ascontiguousarray"):
            explicit = self._dtype_of_expr(self._kwarg(node, "dtype"))
            if explicit is None and len(node.args) > 1:
                explicit = self._dtype_of_expr(node.args[1])
            if explicit is not None:
                return Value("array", explicit)
            if args and args[0].is_strong and args[0].dtype is not None:
                return Value("array", args[0].dtype, packed=args[0].packed)
            return UNKNOWN
        if tail == "arange":
            explicit = self._dtype_of_expr(self._kwarg(node, "dtype"))
            if explicit is not None:
                return Value("array", explicit)
            if any(v.kind == "pyfloat" for v in args):
                return Value("array", FLOAT64)
            if args and all(v.kind in ("pyint", "pybool") for v in args):
                return Value("array", INT_DEFAULT)
            return UNKNOWN
        if tail in ("left_shift", "right_shift"):
            if len(args) >= 2:
                op: ast.operator = (
                    ast.LShift() if tail == "left_shift" else ast.RShift()
                )
                return self._binop_value(op, args[0], args[1])
            return UNKNOWN
        if tail in _PROMOTING_UFUNCS:
            if len(args) >= 2:
                return promote_values(args[0], args[1])
            return UNKNOWN
        if tail == "where":
            if len(args) == 3:
                return promote_values(args[1], args[2])
            return UNKNOWN
        if tail == "sum":
            explicit = self._dtype_of_expr(self._kwarg(node, "dtype"))
            if args and args[0].is_strong and args[0].dtype is not None:
                dtype = explicit or accumulator_dtype(args[0].dtype)
                return Value("scalar", dtype, packed=args[0].packed)
            return UNKNOWN
        if tail in ("unpackbits", "packbits"):
            return Value("array", _DTYPES["uint8"])
        if tail in _INDEX_FUNCS:
            return Value("array", INTP)
        if tail in _PASSTHROUGH_FUNCS:
            if tail == "concatenate" and node.args:
                first = node.args[0]
                if isinstance(first, (ast.List, ast.Tuple)):
                    elts = [self.values.get(id(e), UNKNOWN) for e in first.elts]
                    result = elts[0] if elts else UNKNOWN
                    for elt in elts[1:]:
                        if result.is_strong and elt.is_strong:
                            result = promote_values(result, elt)
                        else:
                            result = UNKNOWN
                    if result.is_strong:
                        return Value("array", result.dtype, packed=result.packed)
                return UNKNOWN
            if args and args[0].is_strong and args[0].dtype is not None:
                return Value("array", args[0].dtype, packed=args[0].packed)
            return UNKNOWN
        if tail in ("errstate", "seterr", "nonzero", "dtype"):
            return UNKNOWN
        return None

    def _eval_builtin(self, canonical: str, args: list[Value]) -> Value | None:
        if canonical == "int":
            const = args[0].const if args and isinstance(args[0].const, int) else None
            return Value("pyint", const=const, packed=args[0].packed if args else False)
        if canonical == "float":
            return Value("pyfloat")
        if canonical == "bool":
            return Value("pybool")
        if canonical == "len":
            return Value("pyint")
        if canonical == "abs" and args:
            return args[0]
        if canonical in ("min", "max") and len(args) >= 2:
            return promote_values(args[0], args[1])
        return None


def _all_args(args: ast.arguments) -> list[ast.arg]:
    out = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if args.vararg:
        out.append(args.vararg)
    if args.kwarg:
        out.append(args.kwarg)
    return out


@dataclass
class ModuleAnalysis:
    """Per-module result: one abstract value per evaluated AST node."""

    module: str
    #: keep the tree alive so ``id()`` keys stay unique for the run
    ctx: "FileContext"
    values: dict[int, Value] = field(default_factory=dict)
    module_env: dict[str, Value] = field(default_factory=dict)
    #: joined return value per function qualname
    returns: dict[str, Value] = field(default_factory=dict)

    def value_of(self, node: ast.AST) -> Value:
        """The abstract value the interpreter derived for ``node``."""
        return self.values.get(id(node), UNKNOWN)


def analyze_module(
    ctx: "FileContext",
    call_resolver: Callable[[ast.expr], Value] | None = None,
) -> ModuleAnalysis:
    """Run the abstract interpreter over one parsed file.

    ``call_resolver`` maps an unrecognised callee expression to a return
    :class:`Value` (the :class:`ProjectDataflow` hook for project
    helpers); without one, every such call is :data:`UNKNOWN`.
    """
    analysis = ModuleAnalysis(module=ctx.module_name, ctx=ctx)
    imports = ImportMap(ctx.tree)
    resolver = call_resolver or (lambda _node: UNKNOWN)
    interp = _Interpreter(analysis.values, imports, resolver)

    env = analysis.module_env
    functions: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []
    classes: list[ast.ClassDef] = []
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = UNKNOWN
            functions.append((stmt.name, stmt))
        elif isinstance(stmt, ast.ClassDef):
            env[stmt.name] = UNKNOWN
            classes.append(stmt)
        else:
            interp.exec_stmt(stmt, env)

    def run_function(
        qual: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        seed: dict[str, Value],
    ) -> dict[str, Value]:
        fn_env = dict(analysis.module_env)
        fn_env.update(seed)
        for arg in _all_args(fn.args):
            fn_env[arg.arg] = UNKNOWN
        interp._returns.append([])
        try:
            interp.exec_body(fn.body, fn_env)
        finally:
            collected = interp._returns.pop()
        result = UNKNOWN
        if collected:
            result = collected[0]
            for extra in collected[1:]:
                result = join(result, extra)
        analysis.returns[qual] = result
        return fn_env

    for name, fn in functions:
        run_function(name, fn, {})
    for cls in classes:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # __init__ first: its self.<attr> bindings seed the other methods
        self_env: dict[str, Value] = {}
        init = next((m for m in methods if m.name == "__init__"), None)
        if init is not None:
            init_env = run_function(f"{cls.name}.__init__", init, {})
            self_env = {
                key: value
                for key, value in init_env.items()
                if key.startswith("self.")
            }
        for method in methods:
            if method is init:
                continue
            run_function(f"{cls.name}.{method.name}", method, dict(self_env))
    return analysis


class ProjectDataflow:
    """Lint-run-wide dataflow cache with project-helper return summaries.

    Handed to rules as ``ProjectContext.dataflow``; module analyses are
    memoised per file, and calls to functions the
    :class:`~repro.devtools.reprolint.project.ProjectGraph` can resolve
    statically are summarised by interpreting the callee's body once
    (cycles and unknown callees collapse to :data:`UNKNOWN`).
    """

    def __init__(self, project: "ProjectContext") -> None:
        self._project = project
        self._analyses: dict[str, ModuleAnalysis] = {}
        self._in_progress: set[str] = set()

    def module(self, ctx: "FileContext") -> ModuleAnalysis:
        """The (memoised) analysis of one file."""
        cached = self._analyses.get(ctx.path)
        if cached is not None:
            return cached
        if ctx.path in self._in_progress:
            # helper-summary cycle: hand back an empty analysis rather
            # than recursing; the real one replaces it when the outer
            # call completes
            return ModuleAnalysis(module=ctx.module_name, ctx=ctx)
        self._in_progress.add(ctx.path)
        try:
            resolver = self._make_resolver(ctx)
            analysis = analyze_module(ctx, resolver)
        finally:
            self._in_progress.discard(ctx.path)
        self._analyses[ctx.path] = analysis
        return analysis

    def _make_resolver(self, ctx: "FileContext") -> Callable[[ast.expr], Value]:
        graph = self._project.graph
        imports = ImportMap(ctx.tree)
        module_name = ctx.module_name

        def resolve(func: ast.expr) -> Value:
            candidates: list[str] = []
            if isinstance(func, ast.Name):
                candidates.append(f"{module_name}.{func.id}")
            canonical = imports.resolve(func)
            if canonical is not None:
                resolved = graph.resolve_function(canonical)
                if resolved is not None:
                    candidates.append(resolved)
            for dotted in candidates:
                info = graph.functions.get(dotted)
                if info is None:
                    continue
                return self.return_value(dotted)
            return UNKNOWN

        return resolve

    def return_value(self, dotted: str) -> Value:
        """Joined abstract return value of a known project function."""
        graph = self._project.graph
        info = graph.functions.get(dotted)
        if info is None:
            return UNKNOWN
        module = graph.modules.get(info.module)
        if module is None:
            return UNKNOWN
        analysis = self.module(module.ctx)
        qual = dotted[len(info.module) + 1 :]
        return analysis.returns.get(qual, UNKNOWN)
