"""Rule registry: rules self-register at import time via a decorator.

Importing :mod:`repro.devtools.reprolint.rules` pulls in every built-in
rule module; third parties (or tests) can register additional rules with
the same decorator before calling the engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, TypeVar

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.devtools.reprolint.rules.base import Rule

__all__ = ["RuleRegistryError", "register_rule", "all_rules", "get_rule"]

_RULES: dict[str, "Rule"] = {}

R = TypeVar("R", bound="type[Rule]")


class RuleRegistryError(ReproError):
    """A rule id collision or lookup failure in the registry."""


def register_rule(cls: R) -> R:
    """Class decorator: instantiate and register a rule by its ``rule_id``."""
    rule = cls()
    if not rule.rule_id:
        raise RuleRegistryError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in _RULES:
        raise RuleRegistryError(
            f"duplicate rule id {rule.rule_id!r} "
            f"({type(_RULES[rule.rule_id]).__name__} vs {cls.__name__})"
        )
    _RULES[rule.rule_id] = rule
    return cls


def all_rules() -> list["Rule"]:
    """Every registered rule, sorted by id (stable report order)."""
    _load_builtin_rules()
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> "Rule":
    """Look up one rule by id."""
    _load_builtin_rules()
    try:
        return _RULES[rule_id.upper()]
    except KeyError:
        raise RuleRegistryError(f"unknown rule id {rule_id!r}") from None


def _load_builtin_rules() -> None:
    # import for side effect: each rule module registers its rules
    import repro.devtools.reprolint.rules  # noqa: F401
