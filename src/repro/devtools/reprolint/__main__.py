"""``python -m repro.devtools.reprolint`` — standalone linter entry."""

from __future__ import annotations

import sys

from repro.devtools.reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
