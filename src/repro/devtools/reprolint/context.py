"""Per-file and whole-project views handed to lint rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING

from repro.devtools.reprolint.findings import Finding, Severity
from repro.devtools.reprolint.suppressions import SuppressionIndex, scan_suppressions

if TYPE_CHECKING:  # deferred: project.py needs rules.base which needs us
    from repro.devtools.reprolint.dataflow import ProjectDataflow
    from repro.devtools.reprolint.project import ProjectGraph
    from repro.devtools.reprolint.verification import VerificationIndex


@dataclass
class FileContext:
    """One parsed source file plus everything a rule needs to judge it."""

    path: str
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: SuppressionIndex = field(default_factory=SuppressionIndex)

    @classmethod
    def from_source(cls, path: str, text: str) -> "FileContext":
        """Parse ``text`` (raises :class:`SyntaxError` on broken files)."""
        lines = text.splitlines()
        return cls(
            path=str(PurePosixPath(path)),
            text=text,
            tree=ast.parse(text, filename=path),
            lines=lines,
            suppressions=scan_suppressions(lines),
        )

    # -- path classification ------------------------------------------------

    @property
    def parts(self) -> tuple[str, ...]:
        return PurePosixPath(self.path).parts

    @property
    def is_test(self) -> bool:
        """Test modules get looser determinism/contract expectations."""
        name = PurePosixPath(self.path).name
        return "tests" in self.parts or name.startswith(("test_", "conftest"))

    @property
    def is_library(self) -> bool:
        """Whether this file is part of the shipped ``repro`` package."""
        return "repro" in self.parts and not self.is_test

    @property
    def is_package_init(self) -> bool:
        return PurePosixPath(self.path).name == "__init__.py"

    @property
    def module_name(self) -> str:
        """Dotted module path (``src/repro/a/b.py`` → ``repro.a.b``)."""
        parts = list(self.parts)
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # -- finding construction ----------------------------------------------

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self,
        rule_id: str,
        node: ast.AST | int,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=line,
            col=col,
            message=message,
            severity=severity,
            line_text=self.line_text(line),
            suppressed=self.suppressions.is_suppressed(rule_id, line),
        )


@dataclass
class ProjectContext:
    """All linted files at once — for cross-file rules (e.g. registries)."""

    files: list[FileContext]
    _graph: "ProjectGraph | None" = field(default=None, repr=False, compare=False)
    _dataflow: "ProjectDataflow | None" = field(
        default=None, repr=False, compare=False
    )
    _verification: "VerificationIndex | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def library_files(self) -> list[FileContext]:
        return [f for f in self.files if f.is_library]

    def by_module(self, module_name: str) -> FileContext | None:
        for f in self.files:
            if f.module_name == module_name:
                return f
        return None

    @property
    def graph(self) -> "ProjectGraph":
        """The whole-program graph, built lazily on first access."""
        if self._graph is None:
            from repro.devtools.reprolint.project import ProjectGraph

            self._graph = ProjectGraph(self.files)
        return self._graph

    @property
    def dataflow(self) -> "ProjectDataflow":
        """The dtype dataflow cache, built lazily on first access."""
        if self._dataflow is None:
            from repro.devtools.reprolint.dataflow import ProjectDataflow

            self._dataflow = ProjectDataflow(self)
        return self._dataflow

    @property
    def verification(self) -> "VerificationIndex":
        """The symbolic verification index, built lazily on first access."""
        if self._verification is None:
            from repro.devtools.reprolint.verification import VerificationIndex

            self._verification = VerificationIndex(self)
        return self._verification
