"""Runtime prover behind ``hyperbutterfly prove``.

The static HB8xx rules verify kernels *without importing them*; this
module is the complementary runtime engine.  For every registered
:class:`~repro.topologies.invariants.InvariantSpec` it

* sweeps the spec's ``small`` parameter grids **exhaustively** — every
  vertex, every codec index — checking the same five paper invariants
  the HB8xx rules own (codec bijectivity, neighbor symmetry, the paper
  degree formula, self-loop/label-range safety, scalar-vs-block
  agreement), and
* certifies the ``large`` grids with the **abstract bit-vector domain**
  of :mod:`.symexec`: the real codec object is reflected into the
  symbolic machine and ``neighbors_block`` is run on the whole rank
  range ``[0, N)`` at once, proving every reachable neighbor rank stays
  inside ``[-1, N)`` for node counts (millions) far past enumeration.

The result is a deterministic *proof ledger* (no timestamps, sorted
keys) suitable for committing — ``.reprolint-proofs.json`` at the repo
root — and diffing in CI.  Statuses per (family, invariant):

* ``proved``          — exhaustively verified at ≥ 1 small point
* ``proved-abstract`` — only the abstract certificate applies
* ``failed``          — a concrete counterexample witness was found
* ``skipped``         — out of model (no codec, no implicit support, …)
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.devtools.reprolint.symexec import Evaluator
    from repro.topologies.base import Topology
    from repro.topologies.invariants import InvariantSpec

__all__ = [
    "DEFAULT_MAX_BITS",
    "INVARIANTS",
    "LEDGER_PATH",
    "prove",
    "prove_family",
    "render_text",
    "configure_parser",
    "run",
]

#: exhaustive sweeps are capped at ``2**max_bits`` nodes per point
DEFAULT_MAX_BITS = 13

#: the default ledger location, committed at the repo root
LEDGER_PATH = ".reprolint-proofs.json"

#: the five paper invariants, in ledger order
INVARIANTS = (
    "codec-bijectivity",
    "degree-formula",
    "label-safety",
    "neighbor-symmetry",
    "scalar-block-agreement",
)


class _Tally:
    """Per-invariant accumulator across a family's parameter points."""

    __slots__ = ("exhaustive", "abstract", "skips", "witness")

    def __init__(self) -> None:
        self.exhaustive: list[tuple[int, ...]] = []
        self.abstract: list[tuple[int, ...]] = []
        self.skips: list[str] = []
        self.witness: dict[str, Any] | None = None

    @property
    def status(self) -> str:
        if self.witness is not None:
            return "failed"
        if self.exhaustive:
            return "proved"
        if self.abstract:
            return "proved-abstract"
        return "skipped"

    def fail(self, point: tuple[int, ...], **detail: Any) -> None:
        if self.witness is None:
            self.witness = {"params": list(point), **detail}

    def to_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "status": self.status,
            "exhaustive_points": len(self.exhaustive),
            "abstract_points": len(self.abstract),
        }
        if self.witness is not None:
            entry["witness"] = self.witness
        if self.status == "skipped" and self.skips:
            entry["reasons"] = sorted(set(self.skips))
        return entry


def _load_evaluator() -> "Evaluator":
    """Reflect the installed ``repro`` sources into a symbolic Evaluator."""
    import repro
    from repro.devtools.reprolint.symexec import Evaluator, Program

    pkg_root = pathlib.Path(repro.__file__).resolve().parent
    sources = []
    for path in sorted(pkg_root.rglob("*.py")):
        parts = ("repro",) + path.relative_to(pkg_root).with_suffix("").parts
        module = ".".join(parts)
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        sources.append((module, ast.parse(path.read_text())))
    return Evaluator(Program.from_sources(sources))


# -- exhaustive sweeps (small grids) ----------------------------------------


def _check_exhaustive(
    spec: "InvariantSpec",
    point: tuple[int, ...],
    topo: "Topology",
    tallies: dict[str, _Tally],
) -> None:
    nodes = list(topo.nodes())
    n = topo.num_nodes
    _check_bijectivity(spec, point, topo, nodes, n, tallies["codec-bijectivity"])
    adjacency = {v: list(topo.neighbors(v)) for v in nodes}
    _check_symmetry(point, adjacency, tallies["neighbor-symmetry"])
    _check_degree(spec, point, adjacency, tallies["degree-formula"])
    _check_label_safety(point, topo, adjacency, n, tallies["label-safety"])
    _check_scalar_block(point, topo, adjacency, n, tallies["scalar-block-agreement"])


def _check_bijectivity(
    spec: "InvariantSpec",
    point: tuple[int, ...],
    topo: "Topology",
    nodes: list,
    n: int,
    tally: _Tally,
) -> None:
    if tally.witness is not None:
        return
    if len(nodes) != n:
        tally.fail(point, kind="node-count-mismatch", nodes=len(nodes), num_nodes=n)
        return
    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topo)
    if codec is None:
        tally.skips.append("no registered codec")
        return
    seen: dict[int, Any] = {}
    for v in nodes:
        idx = codec.rank(v)
        if not isinstance(idx, int) or not 0 <= idx < n:
            tally.fail(point, kind="rank-out-of-range", label=repr(v), idx=repr(idx))
            return
        if idx in seen:
            tally.fail(
                point,
                kind="rank-collision",
                idx=idx,
                labels=[repr(seen[idx]), repr(v)],
            )
            return
        seen[idx] = v
        if codec.unrank(idx) != v:
            tally.fail(
                point,
                kind="round-trip-broken",
                label=repr(v),
                idx=idx,
                unrank=repr(codec.unrank(idx)),
            )
            return
    tally.exhaustive.append(point)


def _check_symmetry(
    point: tuple[int, ...], adjacency: dict, tally: _Tally
) -> None:
    if tally.witness is not None:
        return
    for v, nbrs in adjacency.items():
        for u in nbrs:
            back = adjacency.get(u)
            if back is not None and v not in back:
                tally.fail(point, kind="asymmetric-edge", v=repr(v), u=repr(u))
                return
    tally.exhaustive.append(point)


def _check_degree(
    spec: "InvariantSpec",
    point: tuple[int, ...],
    adjacency: dict,
    tally: _Tally,
) -> None:
    if tally.witness is not None:
        return
    lo, hi = spec.degree_bounds_at(point)
    degrees = set()
    for v, nbrs in adjacency.items():
        deg = len(nbrs)
        degrees.add(deg)
        if (lo is not None and deg < lo) or (hi is not None and deg > hi):
            tally.fail(
                point,
                kind="degree-out-of-bounds",
                v=repr(v),
                degree=deg,
                expected_min=lo,
                expected_max=hi,
            )
            return
    if spec.regular and len(degrees) > 1:
        tally.fail(point, kind="not-regular", degrees_seen=sorted(degrees))
        return
    tally.exhaustive.append(point)


def _check_label_safety(
    point: tuple[int, ...],
    topo: "Topology",
    adjacency: dict,
    n: int,
    tally: _Tally,
) -> None:
    if tally.witness is not None:
        return
    for v, nbrs in adjacency.items():
        for u in nbrs:
            if u == v:
                tally.fail(point, kind="self-loop", v=repr(v))
                return
            if not topo.has_node(u):
                tally.fail(point, kind="invalid-label", v=repr(v), u=repr(u))
                return
    for row, entries in _block_rows(topo, n):
        for entry in entries:
            if entry < -1 or entry >= n:
                tally.fail(
                    point, kind="out-of-range-rank", idx=row, entry=int(entry)
                )
                return
    tally.exhaustive.append(point)


def _check_scalar_block(
    point: tuple[int, ...],
    topo: "Topology",
    adjacency: dict,
    n: int,
    tally: _Tally,
) -> None:
    if tally.witness is not None:
        return
    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topo)
    if codec is None:
        tally.skips.append("no registered codec")
        return
    if not codec.supports_implicit():
        tally.skips.append("codec does not support implicit adjacency")
        return
    for idx, entries in _block_rows(topo, n):
        block = [int(e) for e in entries if e >= 0]
        scalar = [codec.rank(u) for u in adjacency[codec.unrank(idx)]]
        if block != scalar:
            tally.fail(
                point,
                kind="block-scalar-divergence",
                idx=idx,
                block_row=block,
                scalar_ranks=scalar,
            )
            return
    tally.exhaustive.append(point)


def _block_rows(topo: "Topology", n: int) -> Iterable[tuple[int, list]]:
    """``(idx, row)`` pairs of the codec's implicit adjacency, if any."""
    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topo)
    if codec is None or not codec.supports_implicit():
        return
    import numpy as np

    rows = codec.neighbors_block(np.arange(n, dtype=np.int64))
    for idx in range(n):
        yield idx, list(rows[idx])


# -- abstract certificates (large grids) ------------------------------------


def _certify_abstract(
    spec: "InvariantSpec",
    point: tuple[int, ...],
    evaluator: "Evaluator",
    tallies: dict[str, _Tally],
) -> None:
    """Certify ``neighbors_block`` over the whole rank range symbolically.

    Proves two facts without enumerating a single vertex: every
    reachable neighbor rank lies in ``[-1, N)`` (label safety), and —
    for regular families whose block has no padding — the block width
    equals the paper degree (degree formula).
    """
    from repro.devtools.reprolint.symexec import (
        ArrayVal,
        BitVec,
        SymRaise,
        Unsupported,
    )
    from repro.fastgraph.codecs import codec_for

    safety = tallies["label-safety"]
    try:
        topo = spec.build_instance(point)
        n = topo.num_nodes
        codec = codec_for(topo)
        if codec is None or not codec.supports_implicit():
            safety.skips.append("no implicit codec for abstract certificate")
            return
        sym = evaluator.reflect(codec)
        out = evaluator.call_method(
            sym, "neighbors_block", [BitVec.range(0, n - 1)]
        )
    except (Unsupported, SymRaise) as exc:
        safety.skips.append(f"abstract certificate out of model: {exc}")
        return
    if not isinstance(out, ArrayVal):
        safety.skips.append("neighbors_block did not reflect to a column array")
        return
    cols = [
        c if isinstance(c, BitVec) else BitVec.concrete(c) for c in out.cols
    ]
    for col_idx, col in enumerate(cols):
        if col.lo < -1 or col.hi >= n:
            safety.fail(
                point,
                kind="abstract-range-escape",
                col=col_idx,
                bounds=[col.lo, col.hi],
                num_nodes=n,
            )
            return
    if safety.witness is None:
        safety.abstract.append(point)
    degree = tallies["degree-formula"]
    if degree.witness is None and spec.regular and spec.degree is not None:
        expected = spec.degree_at(point)
        if len(cols) == expected and all(c.lo >= 0 for c in cols):
            degree.abstract.append(point)


# -- per-family and whole-registry drivers ----------------------------------


def prove_family(
    spec: "InvariantSpec",
    *,
    max_bits: int = DEFAULT_MAX_BITS,
    evaluator: "Evaluator | None" = None,
) -> dict[str, Any]:
    """Prove one family's invariants; returns its ledger entry."""
    node_cap = 1 << max_bits
    tallies = {name: _Tally() for name in INVARIANTS}
    swept: list[tuple[int, ...]] = []
    out_of_cap: list[tuple[int, ...]] = []
    for point in spec.small:
        topo = spec.build_instance(point)
        if topo.num_nodes > node_cap:
            out_of_cap.append(point)
            continue
        swept.append(point)
        _check_exhaustive(spec, point, topo, tallies)
    abstract_points = tuple(spec.large) + tuple(out_of_cap)
    if abstract_points:
        if evaluator is None:
            evaluator = _load_evaluator()
        for point in abstract_points:
            _certify_abstract(spec, point, evaluator, tallies)
    return {
        "params": list(spec.params),
        "paper": spec.paper,
        "points": {
            "exhaustive": [list(p) for p in swept],
            "abstract": [list(p) for p in abstract_points],
            "out_of_cap": [list(p) for p in out_of_cap],
        },
        "invariants": {name: tallies[name].to_dict() for name in INVARIANTS},
    }


def prove(
    families: Iterable[str] | None = None,
    *,
    max_bits: int = DEFAULT_MAX_BITS,
) -> dict[str, Any]:
    """Prove every registered family (or a subset); returns the ledger."""
    import repro  # noqa: F401  — registers every family's invariant spec
    import repro.fastgraph.codecs  # noqa: F401  — populates the codec registry
    from repro.errors import InvalidParameterError
    from repro.topologies.invariants import all_invariant_specs

    specs = all_invariant_specs()
    if families is not None:
        wanted = list(families)
        unknown = sorted(set(wanted) - set(specs))
        if unknown:
            raise InvalidParameterError(
                f"unknown families {unknown}; registered: {sorted(specs)}"
            )
        specs = {name: specs[name] for name in sorted(wanted)}
    needs_abstract = any(
        spec.large for spec in specs.values()
    )
    evaluator = _load_evaluator() if needs_abstract else None
    ledger: dict[str, Any] = {
        "version": 1,
        "max_bits": max_bits,
        "families": {},
    }
    counts = {"proved": 0, "proved-abstract": 0, "failed": 0, "skipped": 0}
    for name, spec in specs.items():
        entry = prove_family(spec, max_bits=max_bits, evaluator=evaluator)
        ledger["families"][name] = entry
        for inv in entry["invariants"].values():
            counts[inv["status"]] += 1
    ledger["summary"] = {"families": len(specs), **counts}
    return ledger


# -- rendering and CLI ------------------------------------------------------


def render_text(ledger: dict[str, Any]) -> str:
    lines = []
    for family in sorted(ledger["families"]):
        entry = ledger["families"][family]
        params = ", ".join(entry["params"])
        paper = f"  [{entry['paper']}]" if entry["paper"] else ""
        lines.append(f"{family}({params}){paper}")
        points = entry["points"]
        lines.append(
            f"  points: {len(points['exhaustive'])} exhaustive, "
            f"{len(points['abstract'])} abstract"
        )
        for name in INVARIANTS:
            inv = entry["invariants"][name]
            detail = ""
            if inv["status"] == "failed":
                detail = f"  {json.dumps(inv['witness'], sort_keys=True)}"
            elif inv["status"] == "skipped" and inv.get("reasons"):
                detail = f"  ({'; '.join(inv['reasons'])})"
            lines.append(f"  {name:<24} {inv['status']}{detail}")
    summary = ledger["summary"]
    lines.append(
        f"{summary['families']} families: {summary['proved']} proved, "
        f"{summary['proved-abstract']} proved-abstract, "
        f"{summary['failed']} failed, {summary['skipped']} skipped"
    )
    return "\n".join(lines)


def write_ledger(ledger: dict[str, Any], path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(
        json.dumps(ledger, indent=2, sort_keys=True) + "\n"
    )


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        action="append",
        default=None,
        metavar="NAME",
        help="prove only this family (repeatable; default: all registered)",
    )
    parser.add_argument(
        "--max-bits",
        type=int,
        default=DEFAULT_MAX_BITS,
        help=f"exhaustive-sweep cap: at most 2**MAX_BITS nodes per point "
        f"(default {DEFAULT_MAX_BITS}; larger points use the abstract domain)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=f"also write the proof ledger as sorted JSON (e.g. {LEDGER_PATH})",
    )


def run(args: argparse.Namespace) -> int:
    """CLI entry point; exit 0 proved / 1 counterexample / 2 error."""
    from repro.errors import ReproError

    try:
        ledger = prove(args.family, max_bits=args.max_bits)
    except ReproError as exc:
        print(f"prove: error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(json.dumps(ledger, indent=2, sort_keys=True))
    else:
        print(render_text(ledger))
    if args.output is not None:
        write_ledger(ledger, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    return 1 if ledger["summary"]["failed"] else 0
